//===- io/MatrixMarket.cpp - Matrix Market reader/writer ------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "io/MatrixMarket.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace cvr {
namespace {

enum class MmFormat { Coordinate, Array };
enum class MmField { Real, Integer, Pattern };
enum class MmSymmetry { General, Symmetric, SkewSymmetric };

std::string toLower(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return S;
}

/// getline that strips a trailing '\r', so CRLF files parse identically to
/// LF files (SuiteSparse tarballs unpacked on Windows are a classic
/// source).
bool getLineCrlf(std::istream &IS, std::string &Line) {
  if (!std::getline(IS, Line))
    return false;
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return true;
}

/// Reads the next line that is neither blank nor a '%' comment (comments
/// are legal anywhere after the banner, including between data entries);
/// returns false at end of stream or when the `io.mm.short-read` fail
/// point simulates one.
bool nextDataLine(std::istream &IS, std::string &Line) {
  if (CVR_FAIL_POINT("io.mm.short-read"))
    return false;
  while (getLineCrlf(IS, Line)) {
    std::size_t I = Line.find_first_not_of(" \t");
    if (I == std::string::npos)
      continue;
    if (Line[I] == '%')
      continue;
    return true;
  }
  return false;
}

constexpr long long Int32Max = std::numeric_limits<std::int32_t>::max();

} // namespace

StatusOr<CooMatrix> readMatrixMarket(std::istream &IS) {
  std::string Line;
  if (!getLineCrlf(IS, Line))
    return Status::dataLoss("empty input");

  std::istringstream Banner(Line);
  std::string Tag, Object, FormatStr, FieldStr, SymStr;
  Banner >> Tag >> Object >> FormatStr >> FieldStr >> SymStr;
  if (Tag != "%%MatrixMarket")
    return Status::invalidArgument("missing %%MatrixMarket banner");
  if (toLower(Object) != "matrix")
    return Status::invalidArgument("unsupported object '" + Object + "'");

  MmFormat Format;
  FormatStr = toLower(FormatStr);
  if (FormatStr == "coordinate")
    Format = MmFormat::Coordinate;
  else if (FormatStr == "array")
    Format = MmFormat::Array;
  else
    return Status::invalidArgument("unsupported format '" + FormatStr + "'");

  MmField Field;
  FieldStr = toLower(FieldStr);
  if (FieldStr == "real" || FieldStr == "double")
    Field = MmField::Real;
  else if (FieldStr == "integer")
    Field = MmField::Integer;
  else if (FieldStr == "pattern")
    Field = MmField::Pattern;
  else
    return Status::invalidArgument("unsupported field '" + FieldStr + "'");

  MmSymmetry Sym;
  SymStr = toLower(SymStr);
  if (SymStr == "general")
    Sym = MmSymmetry::General;
  else if (SymStr == "symmetric")
    Sym = MmSymmetry::Symmetric;
  else if (SymStr == "skew-symmetric")
    Sym = MmSymmetry::SkewSymmetric;
  else
    return Status::invalidArgument("unsupported symmetry '" + SymStr + "'");

  if (Format == MmFormat::Array && Field == MmField::Pattern)
    return Status::invalidArgument("array format cannot be pattern");

  if (!nextDataLine(IS, Line))
    return Status::dataLoss("missing size line");

  // Sizes parse as long long so a value beyond int32 is seen, not
  // truncated; a value beyond even long long sets failbit and lands in
  // "malformed size line".
  std::istringstream SizeLine(Line);
  long long Rows = -1, Cols = -1, Declared = -1;
  if (Format == MmFormat::Coordinate)
    SizeLine >> Rows >> Cols >> Declared;
  else
    SizeLine >> Rows >> Cols;
  if (SizeLine.fail() || Rows < 0 || Cols < 0 ||
      (Format == MmFormat::Coordinate && Declared < 0))
    return Status::dataLoss("malformed size line: " + Line);
  if (Rows > Int32Max || Cols > Int32Max)
    return Status::outOfRange(
        "matrix dimensions " + std::to_string(Rows) + " x " +
        std::to_string(Cols) + " overflow the int32 index space");
  if (Format == MmFormat::Array &&
      Declared == -1) // Array: entry count is implied by the shape.
    Declared = 0;
  // Symmetric expansion at most doubles the entries; keep the total
  // addressable.
  if (Declared > Int32Max * 2LL)
    return Status::outOfRange("declared entry count " +
                              std::to_string(Declared) +
                              " overflows the supported nnz range");

  CooMatrix M(static_cast<std::int32_t>(Rows), static_cast<std::int32_t>(Cols));

  auto AddWithSymmetry = [&](std::int32_t R, std::int32_t C, double V) {
    M.add(R, C, V);
    if (R == C)
      return;
    if (Sym == MmSymmetry::Symmetric)
      M.add(C, R, V);
    else if (Sym == MmSymmetry::SkewSymmetric)
      M.add(C, R, -V);
  };

  // Reservations trust the declared count only up to a cap: a corrupt
  // header must not be able to commission a multi-gigabyte allocation
  // before a single entry has parsed. Beyond the cap the vector grows
  // geometrically as real data arrives.
  constexpr long long MaxTrustedReserve = 1LL << 24;

  if (Format == MmFormat::Coordinate) {
    M.reserve(static_cast<std::size_t>(
        std::min(Declared, MaxTrustedReserve) *
        (Sym == MmSymmetry::General ? 1 : 2)));
    for (long long K = 0; K < Declared; ++K) {
      if (!nextDataLine(IS, Line))
        return Status::dataLoss("unexpected end of file: expected " +
                                std::to_string(Declared) + " entries, got " +
                                std::to_string(K));
      std::istringstream Entry(Line);
      long long R, C;
      double V = 1.0;
      Entry >> R >> C;
      if (Field != MmField::Pattern)
        Entry >> V;
      if (Entry.fail())
        return Status::dataLoss("malformed entry line: " + Line);
      if (R < 1 || R > Rows || C < 1 || C > Cols)
        return Status::dataLoss("entry index out of range: " + Line);
      AddWithSymmetry(static_cast<std::int32_t>(R - 1),
                      static_cast<std::int32_t>(C - 1), V);
    }
  } else {
    // Array format: column-major dense listing. Symmetric inputs list only
    // the lower triangle.
    if (Rows * Cols > Int32Max * 2LL)
      return Status::outOfRange("dense array of " + std::to_string(Rows) +
                                " x " + std::to_string(Cols) +
                                " entries overflows the supported range");
    M.reserve(static_cast<std::size_t>(
        std::min(Rows * Cols, MaxTrustedReserve)));
    for (long long C = 0; C < Cols; ++C) {
      long long FirstRow = Sym == MmSymmetry::General ? 0 : C;
      if (Sym == MmSymmetry::SkewSymmetric)
        FirstRow = C + 1;
      for (long long R = FirstRow; R < Rows; ++R) {
        if (!nextDataLine(IS, Line))
          return Status::dataLoss("unexpected end of array data");
        std::istringstream Entry(Line);
        double V;
        Entry >> V;
        if (Entry.fail())
          return Status::dataLoss("malformed array value: " + Line);
        if (V != 0.0)
          AddWithSymmetry(static_cast<std::int32_t>(R),
                          static_cast<std::int32_t>(C), V);
      }
    }
  }

  M.canonicalize();
  return M;
}

StatusOr<CooMatrix> readMatrixMarketFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return Status::notFound("cannot open '" + Path + "'");
  StatusOr<CooMatrix> R = readMatrixMarket(IS);
  if (!R.ok())
    return R.status().withContext(Path);
  return R;
}

void writeMatrixMarket(std::ostream &OS, const CooMatrix &M) {
  OS << "%%MatrixMarket matrix coordinate real general\n";
  OS << "% written by the CVR reproduction project\n";
  OS << M.numRows() << ' ' << M.numCols() << ' ' << M.numEntries() << '\n';
  char Buf[64];
  for (const CooEntry &E : M.entries()) {
    std::snprintf(Buf, sizeof(Buf), "%d %d %.17g\n", E.Row + 1, E.Col + 1,
                  E.Val);
    OS << Buf;
  }
}

Status writeMatrixMarketFile(const std::string &Path, const CooMatrix &M) {
  std::ofstream OS(Path);
  if (!OS)
    return Status::unavailable("cannot open '" + Path + "' for writing");
  writeMatrixMarket(OS, M);
  OS.flush();
  if (!OS)
    return Status::unavailable("write to '" + Path + "' failed");
  return Status::okStatus();
}

} // namespace cvr
