//===- io/MatrixMarket.cpp - Matrix Market reader/writer ------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "io/MatrixMarket.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cvr {
namespace {

enum class MmFormat { Coordinate, Array };
enum class MmField { Real, Integer, Pattern };
enum class MmSymmetry { General, Symmetric, SkewSymmetric };

std::string toLower(std::string S) {
  std::transform(S.begin(), S.end(), S.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return S;
}

/// Reads the next line that is neither blank nor a '%' comment; returns
/// false at end of stream.
bool nextDataLine(std::istream &IS, std::string &Line) {
  while (std::getline(IS, Line)) {
    std::size_t I = Line.find_first_not_of(" \t\r\n");
    if (I == std::string::npos)
      continue;
    if (Line[I] == '%')
      continue;
    return true;
  }
  return false;
}

} // namespace

MmReadResult readMatrixMarket(std::istream &IS) {
  std::string Line;
  if (!std::getline(IS, Line))
    return MmReadResult::failure("empty input");

  std::istringstream Banner(Line);
  std::string Tag, Object, FormatStr, FieldStr, SymStr;
  Banner >> Tag >> Object >> FormatStr >> FieldStr >> SymStr;
  if (Tag != "%%MatrixMarket")
    return MmReadResult::failure("missing %%MatrixMarket banner");
  if (toLower(Object) != "matrix")
    return MmReadResult::failure("unsupported object '" + Object + "'");

  MmFormat Format;
  FormatStr = toLower(FormatStr);
  if (FormatStr == "coordinate")
    Format = MmFormat::Coordinate;
  else if (FormatStr == "array")
    Format = MmFormat::Array;
  else
    return MmReadResult::failure("unsupported format '" + FormatStr + "'");

  MmField Field;
  FieldStr = toLower(FieldStr);
  if (FieldStr == "real" || FieldStr == "double")
    Field = MmField::Real;
  else if (FieldStr == "integer")
    Field = MmField::Integer;
  else if (FieldStr == "pattern")
    Field = MmField::Pattern;
  else
    return MmReadResult::failure("unsupported field '" + FieldStr + "'");

  MmSymmetry Sym;
  SymStr = toLower(SymStr);
  if (SymStr == "general")
    Sym = MmSymmetry::General;
  else if (SymStr == "symmetric")
    Sym = MmSymmetry::Symmetric;
  else if (SymStr == "skew-symmetric")
    Sym = MmSymmetry::SkewSymmetric;
  else
    return MmReadResult::failure("unsupported symmetry '" + SymStr + "'");

  if (Format == MmFormat::Array && Field == MmField::Pattern)
    return MmReadResult::failure("array format cannot be pattern");

  if (!nextDataLine(IS, Line))
    return MmReadResult::failure("missing size line");

  std::istringstream SizeLine(Line);
  long Rows = -1, Cols = -1, Declared = -1;
  if (Format == MmFormat::Coordinate)
    SizeLine >> Rows >> Cols >> Declared;
  else
    SizeLine >> Rows >> Cols;
  if (SizeLine.fail() || Rows < 0 || Cols < 0 ||
      (Format == MmFormat::Coordinate && Declared < 0))
    return MmReadResult::failure("malformed size line: " + Line);

  CooMatrix M(static_cast<std::int32_t>(Rows), static_cast<std::int32_t>(Cols));

  auto AddWithSymmetry = [&](std::int32_t R, std::int32_t C, double V) {
    M.add(R, C, V);
    if (R == C)
      return;
    if (Sym == MmSymmetry::Symmetric)
      M.add(C, R, V);
    else if (Sym == MmSymmetry::SkewSymmetric)
      M.add(C, R, -V);
  };

  if (Format == MmFormat::Coordinate) {
    M.reserve(static_cast<std::size_t>(Declared) *
              (Sym == MmSymmetry::General ? 1 : 2));
    for (long K = 0; K < Declared; ++K) {
      if (!nextDataLine(IS, Line))
        return MmReadResult::failure("unexpected end of file: expected " +
                                     std::to_string(Declared) +
                                     " entries, got " + std::to_string(K));
      std::istringstream Entry(Line);
      long R, C;
      double V = 1.0;
      Entry >> R >> C;
      if (Field != MmField::Pattern)
        Entry >> V;
      if (Entry.fail())
        return MmReadResult::failure("malformed entry line: " + Line);
      if (R < 1 || R > Rows || C < 1 || C > Cols)
        return MmReadResult::failure("entry index out of range: " + Line);
      AddWithSymmetry(static_cast<std::int32_t>(R - 1),
                      static_cast<std::int32_t>(C - 1), V);
    }
  } else {
    // Array format: column-major dense listing. Symmetric inputs list only
    // the lower triangle.
    M.reserve(static_cast<std::size_t>(Rows) * Cols);
    for (long C = 0; C < Cols; ++C) {
      long FirstRow = Sym == MmSymmetry::General ? 0 : C;
      if (Sym == MmSymmetry::SkewSymmetric)
        FirstRow = C + 1;
      for (long R = FirstRow; R < Rows; ++R) {
        if (!nextDataLine(IS, Line))
          return MmReadResult::failure("unexpected end of array data");
        std::istringstream Entry(Line);
        double V;
        Entry >> V;
        if (Entry.fail())
          return MmReadResult::failure("malformed array value: " + Line);
        if (V != 0.0)
          AddWithSymmetry(static_cast<std::int32_t>(R),
                          static_cast<std::int32_t>(C), V);
      }
    }
  }

  M.canonicalize();
  return MmReadResult::success(std::move(M));
}

MmReadResult readMatrixMarketFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return MmReadResult::failure("cannot open '" + Path + "'");
  return readMatrixMarket(IS);
}

void writeMatrixMarket(std::ostream &OS, const CooMatrix &M) {
  OS << "%%MatrixMarket matrix coordinate real general\n";
  OS << "% written by the CVR reproduction project\n";
  OS << M.numRows() << ' ' << M.numCols() << ' ' << M.numEntries() << '\n';
  char Buf[64];
  for (const CooEntry &E : M.entries()) {
    std::snprintf(Buf, sizeof(Buf), "%d %d %.17g\n", E.Row + 1, E.Col + 1,
                  E.Val);
    OS << Buf;
  }
}

bool writeMatrixMarketFile(const std::string &Path, const CooMatrix &M,
                           std::string *Error) {
  std::ofstream OS(Path);
  if (!OS) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  writeMatrixMarket(OS, M);
  OS.flush();
  if (!OS) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

} // namespace cvr
