//===- io/MmapFile.h - Read-only file mapping with SIGBUS guard -*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only, page-aligned memory mapping of a file — the zero-copy load
/// path of the serving daemon (serve/Fleet). Two hazards distinguish a
/// mapped blob from a stream read, and this header owns both:
///
///  * `MmapFile::open` maps PROT_READ/MAP_PRIVATE and records the size the
///    file had at open time; the validators bound every access to that
///    size, so a file that was *always* short is rejected by ordinary
///    bounds checks without ever faulting.
///  * A file truncated *after* the mapping exists turns loads beyond the
///    new end-of-file into SIGBUS. `withSigbusGuard` runs a callable with
///    a thread-local recovery context installed: a SIGBUS raised on that
///    thread unwinds back into the guard, which reports DATA_LOSS instead
///    of taking the process down. Validation of a freshly mapped blob runs
///    under the guard; once a blob has passed, the daemon holds the
///    mapping open for its lifetime.
///
/// The guard nests and is per-thread; a SIGBUS on an unguarded thread
/// falls through to the default disposition (crash — the correct outcome
/// for a genuine wild access).
///
//===----------------------------------------------------------------------===//

#ifndef CVR_IO_MMAPFILE_H
#define CVR_IO_MMAPFILE_H

#include "support/Status.h"

#include <cstddef>
#include <functional>
#include <string>

namespace cvr {
namespace io {

/// Move-only owner of one read-only file mapping.
class MmapFile {
public:
  MmapFile() = default;
  MmapFile(MmapFile &&Other) noexcept
      : Addr(Other.Addr), Bytes(Other.Bytes) {
    Other.Addr = nullptr;
    Other.Bytes = 0;
  }
  MmapFile &operator=(MmapFile &&Other) noexcept;
  MmapFile(const MmapFile &) = delete;
  MmapFile &operator=(const MmapFile &) = delete;
  ~MmapFile();

  /// Maps \p Path read-only. NOT_FOUND when the file cannot be opened,
  /// INVALID_ARGUMENT for an empty file (nothing to map — a zero-byte
  /// blob is never valid), UNAVAILABLE when the map itself fails
  /// (including the `serve.mmap` fail point, which models transient map
  /// exhaustion and is retryable).
  [[nodiscard]] static StatusOr<MmapFile> open(const std::string &Path);

  /// Base of the mapping; page-aligned, hence 64-byte aligned. nullptr
  /// for a default-constructed (empty) object.
  const void *data() const { return Addr; }

  /// File size at open time; every validated access stays below this.
  std::size_t size() const { return Bytes; }

  bool valid() const { return Addr != nullptr; }

private:
  MmapFile(void *A, std::size_t N) : Addr(A), Bytes(N) {}

  void *Addr = nullptr;
  std::size_t Bytes = 0;
};

/// Runs \p Fn with SIGBUS recovery installed for the calling thread. If a
/// SIGBUS fires while \p Fn executes (a mapped file truncated underneath
/// the reader), control returns here and the result is DATA_LOSS naming
/// \p What; otherwise \p Fn's own Status is returned. Reentrant per
/// thread; the process-wide handler is installed on first use and left in
/// place (it re-raises with the default disposition when the faulting
/// thread holds no guard).
[[nodiscard]] Status withSigbusGuard(const char *What,
                                     const std::function<Status()> &Fn);

} // namespace io
} // namespace cvr

#endif // CVR_IO_MMAPFILE_H
