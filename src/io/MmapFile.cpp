//===- io/MmapFile.cpp - Read-only file mapping with SIGBUS guard ---------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "io/MmapFile.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <csetjmp>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace cvr {
namespace io {

MmapFile &MmapFile::operator=(MmapFile &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Addr != nullptr)
    (void)munmap(Addr, Bytes);
  Addr = Other.Addr;
  Bytes = Other.Bytes;
  Other.Addr = nullptr;
  Other.Bytes = 0;
  return *this;
}

MmapFile::~MmapFile() {
  if (Addr != nullptr)
    (void)munmap(Addr, Bytes);
}

StatusOr<MmapFile> MmapFile::open(const std::string &Path) {
  if (CVR_FAIL_POINT("serve.mmap"))
    return Status::unavailable("mmap of '" + Path +
                               "' failed transiently (fail point)");
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return Status::notFound("cannot open '" + Path +
                            "': " + std::strerror(errno));
  struct stat St;
  if (fstat(Fd, &St) != 0) {
    int E = errno;
    (void)close(Fd);
    return Status::unavailable("fstat of '" + Path +
                               "' failed: " + std::strerror(E));
  }
  if (St.st_size == 0) {
    (void)close(Fd);
    return Status::invalidArgument("'" + Path +
                                   "' is empty; nothing to map");
  }
  auto N = static_cast<std::size_t>(St.st_size);
  void *A = mmap(nullptr, N, PROT_READ, MAP_PRIVATE, Fd, 0);
  int E = errno;
  (void)close(Fd); // The mapping keeps its own reference.
  if (A == MAP_FAILED)
    return Status::unavailable("mmap of '" + Path +
                               "' failed: " + std::strerror(E));
  return MmapFile(A, N);
}

//===----------------------------------------------------------------------===//
// SIGBUS recovery
//===----------------------------------------------------------------------===//

namespace {

/// Per-thread recovery context. `Active` gates the handler: a SIGBUS on a
/// thread whose guard is not active falls through to the default
/// disposition (the handler re-raises), so genuine wild accesses still
/// crash loudly.
thread_local sigjmp_buf GSigbusJump;
thread_local volatile sig_atomic_t GSigbusActive = 0;

extern "C" void sigbusHandler(int Sig) {
  if (GSigbusActive) {
    GSigbusActive = 0;
    siglongjmp(GSigbusJump, 1);
  }
  // Not ours: restore the default disposition and re-raise so the process
  // dies with the honest signal.
  signal(Sig, SIG_DFL);
  raise(Sig);
}

void installSigbusHandlerOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = sigbusHandler;
    sigemptyset(&SA.sa_mask);
    // SA_NODEFER: siglongjmp skips the normal handler return, so the
    // signal must not stay blocked or the next SIGBUS is lost.
    SA.sa_flags = SA_NODEFER;
    (void)sigaction(SIGBUS, &SA, nullptr);
  });
}

} // namespace

Status withSigbusGuard(const char *What, const std::function<Status()> &Fn) {
  installSigbusHandlerOnce();
  // Save the outer context so guards nest (the outer guard resumes
  // catching after the inner one returns).
  sigjmp_buf Saved;
  std::memcpy(&Saved, &GSigbusJump, sizeof(sigjmp_buf));
  sig_atomic_t SavedActive = GSigbusActive;

  Status Result = Status::okStatus();
  if (sigsetjmp(GSigbusJump, /*savemask=*/1) == 0) {
    GSigbusActive = 1;
    Result = Fn();
  } else {
    Result = Status::dataLoss(
        std::string(What) +
        ": SIGBUS while reading the mapping (file truncated or device "
        "gone underneath the map)");
  }
  GSigbusActive = 0;
  std::memcpy(&GSigbusJump, &Saved, sizeof(sigjmp_buf));
  GSigbusActive = SavedActive;
  return Result;
}

} // namespace io
} // namespace cvr
