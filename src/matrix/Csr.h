//===- matrix/Csr.h - Compressed sparse row matrix --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic CSR container (row pointers, column indices, values) that is
/// the common input of every SpMV format in this project, exactly as in the
/// paper (Section 2.2): `vals`, `col_idx`, `row_ptr`.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_MATRIX_CSR_H
#define CVR_MATRIX_CSR_H

#include "support/AlignedBuffer.h"

#include <cstdint>

namespace cvr {

class CooMatrix;

namespace analysis {
struct Introspect;
} // namespace analysis

/// Compressed sparse row matrix with 64-byte aligned streams.
///
/// Row pointers are 64-bit (large nnz), column indices 32-bit (the gather
/// instructions the kernels use take int32 indices, as on KNL).
class CsrMatrix {
public:
  CsrMatrix() = default;

  /// Builds from a coordinate matrix. \p Coo does not need to be canonical;
  /// a copy is canonicalized internally if needed.
  static CsrMatrix fromCoo(const CooMatrix &Coo);

  /// Builds an empty matrix (all rows empty) of the given shape.
  static CsrMatrix emptyOfShape(std::int32_t Rows, std::int32_t Cols);

  std::int32_t numRows() const { return NumRows; }
  std::int32_t numCols() const { return NumCols; }
  std::int64_t numNonZeros() const {
    return NumRows == 0 ? 0 : RowPtr[NumRows];
  }

  const std::int64_t *rowPtr() const { return RowPtr.data(); }
  const std::int32_t *colIdx() const { return ColIdx.data(); }
  const double *vals() const { return Vals.data(); }
  double *vals() { return Vals.data(); }

  /// Number of nonzeros in row \p R.
  std::int64_t rowLength(std::int32_t R) const {
    return RowPtr[R + 1] - RowPtr[R];
  }

  /// Converts back to coordinate form (canonical by construction).
  CooMatrix toCoo() const;

  /// Extracts the nonzeros whose column lies in [ColBegin, ColEnd) into a
  /// new matrix of the *same shape* (column indices stay global, so the
  /// band's SpMV still gathers from the full x vector). Columns are sorted
  /// within each row, so the cut is a per-row binary search. Used by the
  /// column-blocked CVR build path.
  CsrMatrix columnBand(std::int32_t ColBegin, std::int32_t ColEnd) const;

  /// Structural + value equality.
  bool equals(const CsrMatrix &Other) const;

  /// Internal consistency: monotone row pointers, in-range column indices.
  bool isValid() const;

private:
  /// Mutation access for the invariant-checker tests (src/analysis).
  friend struct analysis::Introspect;

  std::int32_t NumRows = 0;
  std::int32_t NumCols = 0;
  AlignedBuffer<std::int64_t> RowPtr;
  AlignedBuffer<std::int32_t> ColIdx;
  AlignedBuffer<double> Vals;
};

} // namespace cvr

#endif // CVR_MATRIX_CSR_H
