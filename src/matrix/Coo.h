//===- matrix/Coo.h - Coordinate-format sparse matrix -----------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coordinate (triplet) sparse matrix: the assembly format produced by the
/// Matrix Market reader and the synthetic generators, and the input to the
/// CSR builder. Duplicate coordinates are allowed until canonicalize() sums
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_MATRIX_COO_H
#define CVR_MATRIX_COO_H

#include <cstdint>
#include <vector>

namespace cvr {

/// One nonzero in coordinate form.
struct CooEntry {
  std::int32_t Row;
  std::int32_t Col;
  double Val;
};

/// Coordinate-format sparse matrix.
class CooMatrix {
public:
  CooMatrix() = default;

  CooMatrix(std::int32_t Rows, std::int32_t Cols)
      : NumRows(Rows), NumCols(Cols) {}

  std::int32_t numRows() const { return NumRows; }
  std::int32_t numCols() const { return NumCols; }
  std::size_t numEntries() const { return Entries.size(); }

  const std::vector<CooEntry> &entries() const { return Entries; }
  std::vector<CooEntry> &entries() { return Entries; }

  /// Appends one entry; bounds are assert-checked.
  void add(std::int32_t Row, std::int32_t Col, double Val);

  /// Reserves room for \p N entries.
  void reserve(std::size_t N) { Entries.reserve(N); }

  /// Sorts by (row, col) and sums duplicate coordinates. Entries whose
  /// summed value is exactly zero are kept (structural nonzeros), matching
  /// Matrix Market semantics.
  void canonicalize();

  /// True if entries are sorted by (row, col) with no duplicates.
  bool isCanonical() const;

private:
  std::int32_t NumRows = 0;
  std::int32_t NumCols = 0;
  std::vector<CooEntry> Entries;
};

} // namespace cvr

#endif // CVR_MATRIX_COO_H
