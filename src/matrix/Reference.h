//===- matrix/Reference.h - Reference scalar SpMV ---------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook single-threaded CSR SpMV (Algorithm 1 in the paper), used as
/// the golden reference by every correctness test, plus small dense-vector
/// helpers shared by tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_MATRIX_REFERENCE_H
#define CVR_MATRIX_REFERENCE_H

#include "matrix/Csr.h"

#include <vector>

namespace cvr {

/// y = A * x, scalar, single-threaded, in CSR row order. \p Y is
/// overwritten. Sizes are assert-checked.
void referenceSpmv(const CsrMatrix &A, const double *X, double *Y);

/// Convenience overload returning the result vector.
std::vector<double> referenceSpmv(const CsrMatrix &A,
                                  const std::vector<double> &X);

/// Largest absolute elementwise difference between two equal-length vectors.
double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B);

/// Largest relative elementwise difference, with absolute fallback for
/// near-zero references: max |a-b| / max(1, |a|).
double maxRelDiff(const std::vector<double> &A, const std::vector<double> &B);

} // namespace cvr

#endif // CVR_MATRIX_REFERENCE_H
