//===- matrix/Csr.cpp - Compressed sparse row matrix ----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "matrix/Csr.h"

#include "matrix/Coo.h"
#include "support/PrefixSum.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cvr {

CsrMatrix CsrMatrix::fromCoo(const CooMatrix &Coo) {
  const CooMatrix *Src = &Coo;
  CooMatrix Canonical;
  if (!Coo.isCanonical()) {
    Canonical = Coo;
    Canonical.canonicalize();
    Src = &Canonical;
  }

  CsrMatrix M;
  M.NumRows = Src->numRows();
  M.NumCols = Src->numCols();
  M.RowPtr.resize(static_cast<std::size_t>(M.NumRows) + 1);
  M.RowPtr.zero();
  M.ColIdx.resize(Src->numEntries());
  M.Vals.resize(Src->numEntries());

  for (const CooEntry &E : Src->entries())
    ++M.RowPtr[E.Row];
  exclusivePrefixSum(M.RowPtr.data(), M.NumRows);

  // Entries are already sorted by (row, col), so a single linear fill keeps
  // each row's columns ascending.
  std::size_t K = 0;
  for (const CooEntry &E : Src->entries()) {
    M.ColIdx[K] = E.Col;
    M.Vals[K] = E.Val;
    ++K;
  }
  assert(K == static_cast<std::size_t>(M.numNonZeros()) &&
         "row pointer total disagrees with entry count");
  return M;
}

CsrMatrix CsrMatrix::emptyOfShape(std::int32_t Rows, std::int32_t Cols) {
  CsrMatrix M;
  M.NumRows = Rows;
  M.NumCols = Cols;
  M.RowPtr.resize(static_cast<std::size_t>(Rows) + 1);
  M.RowPtr.zero();
  return M;
}

CsrMatrix CsrMatrix::columnBand(std::int32_t ColBegin,
                                std::int32_t ColEnd) const {
  assert(0 <= ColBegin && ColBegin <= ColEnd && ColEnd <= NumCols &&
         "band must lie inside the column range");
  CsrMatrix M;
  M.NumRows = NumRows;
  M.NumCols = NumCols; // Global column indices: the band is a shape-
                       // preserving slice, not a narrower matrix.
  M.RowPtr.resize(static_cast<std::size_t>(NumRows) + 1);
  M.RowPtr.zero();

  // Columns are ascending within each row (isValid's csr.col.order
  // invariant), so the band's slice of a row is one contiguous range.
  auto RowSlice = [&](std::int32_t R, std::int64_t &Lo, std::int64_t &Hi) {
    const std::int32_t *B = ColIdx.data() + RowPtr[R];
    const std::int32_t *E = ColIdx.data() + RowPtr[R + 1];
    Lo = RowPtr[R] + (std::lower_bound(B, E, ColBegin) - B);
    Hi = RowPtr[R] + (std::lower_bound(B, E, ColEnd) - B);
  };

  for (std::int32_t R = 0; R < NumRows; ++R) {
    std::int64_t Lo, Hi;
    RowSlice(R, Lo, Hi);
    M.RowPtr[R] = Hi - Lo;
  }
  exclusivePrefixSum(M.RowPtr.data(), M.NumRows);

  std::int64_t BandNnz = M.RowPtr[NumRows];
  M.ColIdx.resize(static_cast<std::size_t>(BandNnz));
  M.Vals.resize(static_cast<std::size_t>(BandNnz));
  for (std::int32_t R = 0; R < NumRows; ++R) {
    std::int64_t Lo, Hi;
    RowSlice(R, Lo, Hi);
    std::int64_t Dst = M.RowPtr[R];
    for (std::int64_t I = Lo; I < Hi; ++I, ++Dst) {
      M.ColIdx[Dst] = ColIdx[I];
      M.Vals[Dst] = Vals[I];
    }
  }
  return M;
}

CooMatrix CsrMatrix::toCoo() const {
  CooMatrix Coo(NumRows, NumCols);
  Coo.reserve(static_cast<std::size_t>(numNonZeros()));
  for (std::int32_t R = 0; R < NumRows; ++R)
    for (std::int64_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
      Coo.add(R, ColIdx[I], Vals[I]);
  return Coo;
}

bool CsrMatrix::equals(const CsrMatrix &Other) const {
  if (NumRows != Other.NumRows || NumCols != Other.NumCols ||
      numNonZeros() != Other.numNonZeros())
    return false;
  for (std::int32_t R = 0; R <= NumRows; ++R)
    if (RowPtr[R] != Other.RowPtr[R])
      return false;
  for (std::int64_t I = 0, E = numNonZeros(); I < E; ++I)
    if (ColIdx[I] != Other.ColIdx[I] || Vals[I] != Other.Vals[I])
      return false;
  return true;
}

bool CsrMatrix::isValid() const {
  if (NumRows < 0 || NumCols < 0)
    return false;
  if (RowPtr.size() != static_cast<std::size_t>(NumRows) + 1)
    return false;
  if (NumRows > 0 && RowPtr[0] != 0)
    return false;
  for (std::int32_t R = 0; R < NumRows; ++R)
    if (RowPtr[R] > RowPtr[R + 1])
      return false;
  std::int64_t Nnz = numNonZeros();
  if (ColIdx.size() < static_cast<std::size_t>(Nnz) ||
      Vals.size() < static_cast<std::size_t>(Nnz))
    return false;
  for (std::int64_t I = 0; I < Nnz; ++I)
    if (ColIdx[I] < 0 || ColIdx[I] >= NumCols)
      return false;
  return true;
}

} // namespace cvr
