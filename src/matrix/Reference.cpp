//===- matrix/Reference.cpp - Reference scalar SpMV -----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "matrix/Reference.h"

#include <cassert>
#include <cmath>

namespace cvr {

void referenceSpmv(const CsrMatrix &A, const double *X, double *Y) {
  const std::int64_t *RowPtr = A.rowPtr();
  const std::int32_t *ColIdx = A.colIdx();
  const double *Vals = A.vals();
  for (std::int32_t R = 0, E = A.numRows(); R < E; ++R) {
    double Sum = 0.0;
    for (std::int64_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
      Sum += Vals[I] * X[ColIdx[I]];
    Y[R] = Sum;
  }
}

std::vector<double> referenceSpmv(const CsrMatrix &A,
                                  const std::vector<double> &X) {
  assert(X.size() == static_cast<std::size_t>(A.numCols()) &&
         "x length must equal the column count");
  std::vector<double> Y(static_cast<std::size_t>(A.numRows()), 0.0);
  referenceSpmv(A, X.data(), Y.data());
  return Y;
}

double maxAbsDiff(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "length mismatch");
  double Max = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I)
    Max = std::max(Max, std::fabs(A[I] - B[I]));
  return Max;
}

double maxRelDiff(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "length mismatch");
  double Max = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I) {
    double Scale = std::max(1.0, std::fabs(A[I]));
    Max = std::max(Max, std::fabs(A[I] - B[I]) / Scale);
  }
  return Max;
}

} // namespace cvr
