//===- matrix/MatrixStats.cpp - Structural statistics ---------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "matrix/MatrixStats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cvr {

MatrixStats computeStats(const CsrMatrix &A) {
  MatrixStats S;
  S.NumRows = A.numRows();
  S.NumCols = A.numCols();
  S.Nnz = A.numNonZeros();
  if (S.NumRows == 0)
    return S;

  S.MeanRowLength = static_cast<double>(S.Nnz) / S.NumRows;
  S.MinRowLength = std::numeric_limits<std::int64_t>::max();

  double VarAcc = 0.0;
  for (std::int32_t R = 0; R < S.NumRows; ++R) {
    std::int64_t Len = A.rowLength(R);
    S.MaxRowLength = std::max(S.MaxRowLength, Len);
    S.MinRowLength = std::min(S.MinRowLength, Len);
    if (Len == 0)
      ++S.EmptyRows;
    double D = static_cast<double>(Len) - S.MeanRowLength;
    VarAcc += D * D;
  }
  if (S.MeanRowLength > 0.0)
    S.RowLengthCv = std::sqrt(VarAcc / S.NumRows) / S.MeanRowLength;

  if (S.Nnz > 0) {
    const std::int64_t *RowPtr = A.rowPtr();
    const std::int32_t *ColIdx = A.colIdx();
    double BwAcc = 0.0;
    for (std::int32_t R = 0; R < S.NumRows; ++R)
      for (std::int64_t I = RowPtr[R]; I < RowPtr[R + 1]; ++I)
        BwAcc += std::abs(static_cast<double>(ColIdx[I]) - R);
    S.MeanBandwidth = BwAcc / static_cast<double>(S.Nnz);
  }
  return S;
}

} // namespace cvr
