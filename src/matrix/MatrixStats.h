//===- matrix/MatrixStats.h - Structural statistics -------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-matrix structural statistics (row-length distribution, empty rows,
/// bandwidth, skew). The dataset suite uses these to check that each
/// synthetic stand-in matches the structural class of the paper's matrix
/// (scale-free skew vs. HPC regularity), and the tables print nnz/row like
/// the paper's Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_MATRIX_MATRIXSTATS_H
#define CVR_MATRIX_MATRIXSTATS_H

#include "matrix/Csr.h"

#include <cstdint>

namespace cvr {

/// Summary of a matrix's sparsity structure.
struct MatrixStats {
  std::int32_t NumRows = 0;
  std::int32_t NumCols = 0;
  std::int64_t Nnz = 0;
  double MeanRowLength = 0.0;   ///< nnz / rows (the paper's "nnz/row").
  std::int64_t MaxRowLength = 0;
  std::int64_t MinRowLength = 0;
  std::int32_t EmptyRows = 0;
  /// Coefficient of variation of row lengths (stddev / mean); the standard
  /// irregularity measure — scale-free matrices have CV >> 1.
  double RowLengthCv = 0.0;
  /// Mean |col - row| over nonzeros; small for banded/stencil HPC matrices.
  double MeanBandwidth = 0.0;
};

/// Computes all statistics in one pass.
MatrixStats computeStats(const CsrMatrix &A);

} // namespace cvr

#endif // CVR_MATRIX_MATRIXSTATS_H
