//===- matrix/Coo.cpp - Coordinate-format sparse matrix -------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "matrix/Coo.h"

#include <algorithm>
#include <cassert>

namespace cvr {

void CooMatrix::add(std::int32_t Row, std::int32_t Col, double Val) {
  assert(Row >= 0 && Row < NumRows && "COO row index out of range");
  assert(Col >= 0 && Col < NumCols && "COO column index out of range");
  Entries.push_back({Row, Col, Val});
}

void CooMatrix::canonicalize() {
  std::sort(Entries.begin(), Entries.end(),
            [](const CooEntry &A, const CooEntry &B) {
              if (A.Row != B.Row)
                return A.Row < B.Row;
              return A.Col < B.Col;
            });
  // Sum runs of identical coordinates in place.
  std::size_t Out = 0;
  for (std::size_t I = 0; I < Entries.size();) {
    CooEntry Acc = Entries[I];
    std::size_t J = I + 1;
    while (J < Entries.size() && Entries[J].Row == Acc.Row &&
           Entries[J].Col == Acc.Col) {
      Acc.Val += Entries[J].Val;
      ++J;
    }
    Entries[Out++] = Acc;
    I = J;
  }
  Entries.resize(Out);
}

bool CooMatrix::isCanonical() const {
  for (std::size_t I = 1; I < Entries.size(); ++I) {
    const CooEntry &A = Entries[I - 1];
    const CooEntry &B = Entries[I];
    if (A.Row > B.Row || (A.Row == B.Row && A.Col >= B.Col))
      return false;
  }
  return true;
}

} // namespace cvr
