//===- core/Cvr.h - CVR public API umbrella ---------------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public entry point of the CVR library. Typical use:
///
/// \code
///   #include "core/Cvr.h"
///
///   cvr::CsrMatrix A = cvr::CsrMatrix::fromCoo(Coo);
///   cvr::CvrMatrix M = cvr::CvrMatrix::fromCsr(A);   // preprocessing
///   cvr::cvrSpmv(M, X.data(), Y.data());             // y = A * x
/// \endcode
///
/// or through the common kernel interface shared with the baseline formats:
///
/// \code
///   cvr::CvrKernel K;
///   K.prepare(A);
///   K.run(X.data(), Y.data());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVR_H
#define CVR_CORE_CVR_H

#include "core/CvrFormat.h"
#include "core/CvrSpmm.h"
#include "core/CvrSpmv.h"

#endif // CVR_CORE_CVR_H
