//===- core/SpmvKernel.cpp - Virtual anchor for the kernel interface ------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The out-of-line destructor anchors SpmvKernel's vtable in the core
// library (which every kernel implementation links against), so the vtable
// is not duplicated into each translation unit including the header.
//
//===----------------------------------------------------------------------===//

#include "formats/SpmvKernel.h"

namespace cvr {

SpmvKernel::~SpmvKernel() = default;

} // namespace cvr
