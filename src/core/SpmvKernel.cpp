//===- core/SpmvKernel.cpp - Virtual anchor for the kernel interface ------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The out-of-line destructor anchors SpmvKernel's vtable in the core
// library (which every kernel implementation links against), so the vtable
// is not duplicated into each translation unit including the header.
//
//===----------------------------------------------------------------------===//

#include "formats/SpmvKernel.h"

#include <cassert>
#include <exception>
#include <new>
#include <string>
#include <vector>

namespace cvr {

SpmvKernel::~SpmvKernel() = default;

namespace {

/// Shared panel-argument validation for the default batch paths; the
/// native SpMM kernels perform the same checks themselves.
[[nodiscard]] Status validateBatchArgs(std::size_t LdX, std::size_t LdY,
                                       int NumVectors) {
  if (NumVectors < 1)
    return Status::invalidArgument("runBatch needs NumVectors >= 1, got " +
                                   std::to_string(NumVectors));
  if (LdX < static_cast<std::size_t>(NumVectors) ||
      LdY < static_cast<std::size_t>(NumVectors))
    return Status::invalidArgument(
        "runBatch panel strides (LdX=" + std::to_string(LdX) +
        ", LdY=" + std::to_string(LdY) + ") must cover NumVectors=" +
        std::to_string(NumVectors));
  return Status::okStatus();
}

} // namespace

Status SpmvKernel::runBatch(const double *X, std::size_t LdX, double *Y,
                            std::size_t LdY, int NumVectors) const {
  Status S = validateBatchArgs(LdX, LdY, NumVectors);
  if (!S.ok())
    return S;
  if (!X || !Y)
    return Status::invalidArgument("runBatch panels must be non-null");
  const std::int64_t Rows = preparedRows();
  const std::int64_t Cols = preparedCols();
  if (Rows < 0 || Cols < 0)
    return Status::failedPrecondition(
        name() + ": runBatch needs a prepared kernel reporting its shape");
  // Column-by-column composition through contiguous scratch: correct for
  // every format, but it streams the matrix once per column — the
  // degradation ladder's floor, not a fast path.
  std::vector<double> Xc(static_cast<std::size_t>(Cols));
  std::vector<double> Yc(static_cast<std::size_t>(Rows));
  for (int J = 0; J < NumVectors; ++J) {
    for (std::int64_t I = 0; I < Cols; ++I)
      Xc[static_cast<std::size_t>(I)] =
          X[static_cast<std::size_t>(I) * LdX + J];
    run(Xc.data(), Yc.data());
    for (std::int64_t I = 0; I < Rows; ++I)
      Y[static_cast<std::size_t>(I) * LdY + J] =
          Yc[static_cast<std::size_t>(I)];
  }
  return Status::okStatus();
}

Status SpmvKernel::runBatchFused(const double *X, std::size_t LdX, double *Y,
                                 std::size_t LdY, int NumVectors,
                                 FusedBatchEpilogue &E) const {
  if (E.Op != EpilogueOp::None && E.NumVectors != NumVectors)
    return Status::invalidArgument(
        "batch epilogue covers " + std::to_string(E.NumVectors) +
        " columns but the runBatchFused call has " +
        std::to_string(NumVectors));
  Status S = runBatch(X, LdX, Y, LdY, NumVectors);
  if (!S.ok())
    return S;
  applyBatchEpilogueScalar(E, Y, LdY, preparedRows());
  return Status::okStatus();
}

void SpmvKernel::runFused(const double *X, double *Y,
                          FusedEpilogue &E) const {
  run(X, Y);
  std::int64_t N = preparedRows();
  assert(N >= 0 && "runFused needs preparedRows(); prepare() must have run "
                   "and the kernel must report its row count");
  applyEpilogueScalar(E, X, Y, N);
}

bool SpmvKernel::traceRunFused(MemAccessSink &Sink, const double *X,
                               double *Y, FusedEpilogue &E) const {
  if (!traceRun(Sink, X, Y))
    return false;
  std::int64_t N = preparedRows();
  assert(N >= 0 && "traceRunFused needs preparedRows()");
  traceEpilogueScalar(Sink, E, X, Y, N);
  return true;
}

Status SpmvKernel::prepareStatus(const CsrMatrix &A) try {
  prepare(A);
  return Status::okStatus();
} catch (const std::bad_alloc &) {
  return Status::resourceExhausted(name() + ": preparation ran out of memory");
} catch (const std::exception &E) {
  return Status::internal(name() + ": preparation failed: " + E.what());
}

} // namespace cvr
