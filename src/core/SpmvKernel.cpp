//===- core/SpmvKernel.cpp - Virtual anchor for the kernel interface ------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The out-of-line destructor anchors SpmvKernel's vtable in the core
// library (which every kernel implementation links against), so the vtable
// is not duplicated into each translation unit including the header.
//
//===----------------------------------------------------------------------===//

#include "formats/SpmvKernel.h"

#include <cassert>
#include <exception>
#include <new>

namespace cvr {

SpmvKernel::~SpmvKernel() = default;

void SpmvKernel::runFused(const double *X, double *Y,
                          FusedEpilogue &E) const {
  run(X, Y);
  std::int64_t N = preparedRows();
  assert(N >= 0 && "runFused needs preparedRows(); prepare() must have run "
                   "and the kernel must report its row count");
  applyEpilogueScalar(E, X, Y, N);
}

bool SpmvKernel::traceRunFused(MemAccessSink &Sink, const double *X,
                               double *Y, FusedEpilogue &E) const {
  if (!traceRun(Sink, X, Y))
    return false;
  std::int64_t N = preparedRows();
  assert(N >= 0 && "traceRunFused needs preparedRows()");
  traceEpilogueScalar(Sink, E, X, Y, N);
  return true;
}

Status SpmvKernel::prepareStatus(const CsrMatrix &A) try {
  prepare(A);
  return Status::okStatus();
} catch (const std::bad_alloc &) {
  return Status::resourceExhausted(name() + ": preparation ran out of memory");
} catch (const std::exception &E) {
  return Status::internal(name() + ": preparation failed: " + E.what());
}

} // namespace cvr
