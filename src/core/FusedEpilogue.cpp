//===- core/FusedEpilogue.cpp - Scalar epilogue sweeps --------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "formats/FusedEpilogue.h"

#include "support/MemSink.h"

namespace cvr {

void applyEpilogueScalar(FusedEpilogue &E, const double *X, double *Y,
                         std::int64_t N) {
  E.Acc1 = E.Acc2 = E.Acc3 = 0.0;
  if (E.Op == EpilogueOp::None)
    return;
  EpilogueAccum A;
  for (std::int64_t R = 0; R < N; ++R)
    Y[R] = fusedRowApply(E, X, static_cast<std::int32_t>(R), Y[R], A);
  storeAccum(E, A);
}

void traceEpilogueScalar(MemAccessSink &Sink, FusedEpilogue &E,
                         const double *X, double *Y, std::int64_t N) {
  E.Acc1 = E.Acc2 = E.Acc3 = 0.0;
  if (E.Op == EpilogueOp::None)
    return;
  EpilogueAccum A;
  for (std::int64_t R = 0; R < N; ++R) {
    std::int32_t Row = static_cast<std::int32_t>(R);
    // The separate sweep re-reads the y element a fused kernel still holds
    // in a register; that read is exactly the traffic fusion deletes.
    Sink.read(Y + R, sizeof(double));
    traceFusedRowOperands(Sink, E, X, Row);
    if (E.transformsY())
      Sink.write(Y + R, sizeof(double));
    Y[R] = fusedRowApply(E, X, Row, Y[R], A);
  }
  storeAccum(E, A);
}

void traceFusedRowOperands(MemAccessSink &Sink, const FusedEpilogue &E,
                           const double *X, std::int32_t Row) {
  switch (E.Op) {
  case EpilogueOp::None:
    break;
  case EpilogueOp::Dot:
    if (E.WantXDotY)
      Sink.read(X + Row, sizeof(double));
    if (E.Z)
      Sink.read(E.Z + Row, sizeof(double));
    break;
  case EpilogueOp::Axpby:
    Sink.read(E.Z + Row, sizeof(double));
    break;
  case EpilogueOp::ResidualNorm:
    Sink.read(E.B + Row, sizeof(double));
    if (E.ROut)
      Sink.write(E.ROut + Row, sizeof(double));
    break;
  case EpilogueOp::JacobiStep:
    Sink.read(E.B + Row, sizeof(double));
    Sink.read(E.D + Row, sizeof(double));
    Sink.read(E.Xold + Row, sizeof(double));
    Sink.write(E.XNew + Row, sizeof(double));
    break;
  case EpilogueOp::DampScale:
    if (E.Prev)
      Sink.read(E.Prev + Row, sizeof(double));
    break;
  }
}

} // namespace cvr
