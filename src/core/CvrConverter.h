//===- core/CvrConverter.h - Shared CVR conversion engine -------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracker-based CVR conversion (Section 4.2 / Algorithm 3), templated
/// on the output value type so the double-precision (omega = 8) and
/// single-precision (omega = 16) pipelines share one engine. This header is
/// private to core/ — include CvrFormat.h or CvrFloat.h instead.
///
/// The engine turns one nnz chunk of a CSR matrix into a dense
/// `steps x lanes` stream: trackers *feed* on the next non-empty row when a
/// lane drains, *steal* the head of the fullest lane once rows run out, and
/// every finish event appends a `(pos, wb)` record. See CvrFormat.h for the
/// full data-model description.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVRCONVERTER_H
#define CVR_CORE_CVRCONVERTER_H

#include "core/CvrFormat.h"
#include "matrix/Csr.h"
#include "parallel/Partition.h"
#include "support/AlignedBuffer.h"
#include "support/ParallelFor.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

namespace cvr {
namespace detail {

/// Engine knobs (a value-type-independent subset of CvrOptions).
struct ConverterConfig {
  int Lanes = 8;
  int NumThreads = 0;
  bool EnableStealing = true;
  /// Pad the stream to an even step count (required by the f64 kernel's
  /// paired 16-index column loads; the f32 kernel loads one full 512-bit
  /// index vector per step and needs no pairing).
  bool PadEvenSteps = true;
  /// Feed rows longest-first instead of in matrix order (the sort-first
  /// ablation; the paper deliberately keeps matrix order for O(nnz)
  /// preprocessing and x-locality between adjacent rows).
  bool SortFeedRowsByLength = false;
};

/// Conversion output for one matrix: everything a Cvr*Matrix stores.
/// `Ok == false` means an allocation failed mid-conversion (real OOM or
/// the `alloc.aligned-buffer` fail point); the streams are then
/// incomplete and must be discarded — CvrMatrix::tryFromCsr turns this
/// into a RESOURCE_EXHAUSTED Status.
template <typename ValueT> struct ConvertedStreams {
  AlignedBuffer<ValueT> Vals;
  AlignedBuffer<std::int32_t> ColIdx;
  std::vector<CvrRecord> Recs;
  AlignedBuffer<std::int32_t> Tails;
  std::vector<CvrChunk> Chunks;
  std::vector<std::int32_t> ZeroRows;
  bool Ok = true;
};

/// Per-chunk conversion output built locally by each thread and stitched
/// into the shared streams afterwards.
template <typename ValueT> struct ChunkBuild {
  AlignedBuffer<ValueT> Vals;         // Uninitialized growth: every slot is
  AlignedBuffer<std::int32_t> ColIdx; // overwritten by the emit loop.
  std::vector<CvrRecord> Recs;
  std::vector<std::int32_t> Tails;
  std::int64_t NumSteps = 0;
  bool Ok = true; ///< False: allocation failed; streams are incomplete.
};

/// One tracker (the paper's rowID/valID/count triple) plus the bookkeeping
/// this implementation adds: the result slot a stolen piece belongs to.
struct Tracker {
  std::int32_t CurRow = -1; ///< Row being streamed (-1: no piece).
  std::int64_t ValId = 0;   ///< Next CSR element index of the piece.
  std::int64_t Count = 0;   ///< Elements left in the piece.
  std::int32_t Slot = -1;   ///< t_result slot (-1 while in feed phase).
  bool Dead = false;        ///< No work left for this lane.
};

template <typename ValueT> class ChunkConverter {
public:
  ChunkConverter(const CsrMatrix &A, const NnzChunk &Chunk,
                 const ConverterConfig &Cfg, ChunkBuild<ValueT> &Out)
      : A(A), Chunk(Chunk), Cfg(Cfg), Out(Out), Lanes(Cfg.Lanes),
        Trackers(Cfg.Lanes) {}

  void convert() {
    if (Chunk.empty())
      return;
    NextRow = Chunk.FirstRow;
    Out.Tails.assign(Lanes, -1);

    if (Cfg.SortFeedRowsByLength) {
      // Sort-first ablation: feed the chunk's non-empty rows by descending
      // clipped length. This is the extra preprocessing the paper avoids.
      for (std::int32_t R = Chunk.FirstRow; R <= Chunk.LastRow; ++R)
        if (rowEnd(R) - rowBegin(R) > 0)
          FeedList.push_back(R);
      std::stable_sort(FeedList.begin(), FeedList.end(),
                       [&](std::int32_t L, std::int32_t R) {
                         return rowEnd(L) - rowBegin(L) >
                                rowEnd(R) - rowBegin(R);
                       });
    }

    // Preallocate for the common case (steps ~= nnz/lanes); the stream
    // only exceeds this when lanes idle near the chunk end. Allocation
    // failure (real or injected) marks the build failed instead of
    // terminating — the caller surfaces it as a Status.
    std::int64_t Estimate = ((Chunk.size() + Lanes - 1) / Lanes + 4) * Lanes;
    if (!Out.Vals.tryReserve(static_cast<std::size_t>(Estimate)).ok() ||
        !Out.ColIdx.tryReserve(static_cast<std::size_t>(Estimate)).ok()) {
      Out.Ok = false;
      return;
    }
    Out.Recs.reserve(static_cast<std::size_t>(Chunk.LastRow -
                                              Chunk.FirstRow + 1 + 2 * Lanes));

    std::int64_t Steps = 0;
    std::int64_t Run;
    while ((Run = refillLanes(Steps)) > 0)
      if (!emitRun(Steps, Run)) {
        Out.Ok = false;
        return;
      }
    if (Cfg.PadEvenSteps && Steps % 2 != 0) {
      if (!emitPadStep()) {
        Out.Ok = false;
        return;
      }
      ++Steps;
    }
    Out.NumSteps = Steps;
  }

private:
  /// Effective nnz range of \p Row clipped to the chunk.
  std::int64_t rowBegin(std::int32_t Row) const {
    return std::max(A.rowPtr()[Row], Chunk.NnzStart);
  }
  std::int64_t rowEnd(std::int32_t Row) const {
    return std::min(A.rowPtr()[Row + 1], Chunk.NnzEnd);
  }

  /// Feeds the next non-empty row into lane \p Em; false when rows are
  /// exhausted.
  bool feed(int Em) {
    std::int32_t Row;
    if (Cfg.SortFeedRowsByLength) {
      if (FeedCursor >= FeedList.size())
        return false;
      Row = FeedList[FeedCursor++];
    } else {
      while (NextRow <= Chunk.LastRow &&
             rowEnd(NextRow) - rowBegin(NextRow) <= 0)
        ++NextRow;
      if (NextRow > Chunk.LastRow)
        return false;
      Row = NextRow++;
    }
    Tracker &T = Trackers[Em];
    T.CurRow = Row;
    T.ValId = rowBegin(Row);
    T.Count = rowEnd(Row) - T.ValId;
    T.Slot = -1;
    return true;
  }

  /// Records the finish of lane \p Em's current piece at stream position
  /// \p Pos (the paper's "Recording", Algorithm 3 l.13-14 / l.37-38).
  void recordFinish(int Em, std::int64_t Pos) {
    Tracker &T = Trackers[Em];
    if (T.CurRow < 0 && T.Slot < 0)
      return; // Lane never held a piece (initialization path).
    CvrRecord R;
    R.Pos = Pos;
    if (T.Slot < 0) {
      // Feed phase: the whole row finished inside this lane.
      R.Wb = T.CurRow;
      R.Steal = 0;
      R.Shared = static_cast<std::uint8_t>(T.CurRow == Chunk.FirstRow ||
                                           T.CurRow == Chunk.LastRow);
    } else {
      // Steal phase: the partial belongs to a t_result slot.
      R.Wb = T.Slot;
      R.Steal = 1;
      R.Shared = 0;
    }
    Out.Recs.push_back(R);
    T.CurRow = -1;
    T.Slot = -1;
  }

  /// Enters the steal phase: every lane still holding an unfinished row
  /// gets a t_result slot, and `tail` remembers which row each slot holds
  /// (the paper's tail vector, Algorithm 3 l.22-24).
  void snapshotTails() {
    assert(!TailsTaken && "tails must be snapshot exactly once");
    TailsTaken = true;
    for (int K = 0; K < Lanes; ++K) {
      Tracker &T = Trackers[K];
      if (T.Count > 0) {
        T.Slot = K;
        Out.Tails[K] = T.CurRow;
      }
    }
  }

  /// Steals work for lane \p Em from the fullest lane (Algorithm 3
  /// l.29-44); false if no lane has elements to spare.
  bool steal(int Em) {
    if (!Cfg.EnableStealing)
      return false;
    int Candi = -1;
    std::int64_t Total = 0;
    for (int K = 0; K < Lanes; ++K) {
      Total += Trackers[K].Count;
      if (Candi < 0 || Trackers[K].Count > Trackers[Candi].Count)
        Candi = K;
    }
    if (Candi < 0 || Trackers[Candi].Count <= 1)
      return false;
    std::int64_t Average = std::max<std::int64_t>(1, Total / Lanes);
    std::int64_t Take = std::min(Average, Trackers[Candi].Count - 1);
    Tracker &T = Trackers[Em];
    Tracker &C = Trackers[Candi];
    T.ValId = C.ValId;
    T.Count = Take;
    T.Slot = C.Slot;
    T.CurRow = C.CurRow;
    C.ValId += Take;
    C.Count -= Take;
    return true;
  }

  /// Processes every lane whose piece finished: record, then feed or steal
  /// a replacement (the `!vector_reduceAnd(count)` branch of Algorithm 3).
  /// Returns the next run length — the smallest live count, i.e. the
  /// number of steps until the next finish event — or 0 when all lanes are
  /// done.
  std::int64_t refillLanes(std::int64_t Steps) {
    std::int64_t Run = 0;
    for (int Em = 0; Em < Lanes; ++Em) {
      Tracker &T = Trackers[Em];
      if (T.Count == 0) {
        if (T.Dead)
          continue;
        std::int64_t Pos = Steps * Lanes + Em;
        recordFinish(Em, Pos);
        if (!feed(Em)) {
          if (!TailsTaken)
            snapshotTails();
          if (!steal(Em)) {
            T.Dead = true;
            continue;
          }
          // Stealing may have shrunk an earlier lane's count below the
          // running minimum; recompute conservatively.
          Run = 0;
          Em = -1;
          continue;
        }
      }
      if (Run == 0 || T.Count < Run)
        Run = T.Count;
    }
    return Run;
  }

  /// Emits a run of steps in one go: until the next finish event, which by
  /// construction is min(count) = \p Run steps away, every live lane
  /// streams consecutive elements (the gather/store of Algorithm 3
  /// l.56-60, batched). Dead lanes emit zero pads. Returns false when the
  /// stream storage cannot grow.
  bool emitRun(std::int64_t &Steps, std::int64_t Run) {
    assert(Run >= 1 && "emitRun requires at least one live lane");

    std::size_t Base = Out.Vals.size();
    if (!Out.Vals.tryResize(Base + static_cast<std::size_t>(Run) * Lanes)
             .ok() ||
        !Out.ColIdx.tryResize(Base + static_cast<std::size_t>(Run) * Lanes)
             .ok())
      return false;

    // Blocked over steps so the lane-strided stores stay inside L1 even
    // for very long runs (a single pass per lane over a multi-hundred-KB
    // region would re-fetch every output line `Lanes` times).
    constexpr std::int64_t BlockSteps = 128;
    for (std::int64_t J0 = 0; J0 < Run; J0 += BlockSteps) {
      std::int64_t J1 = std::min(Run, J0 + BlockSteps);
      ValueT *VOut = Out.Vals.data() + Base + J0 * Lanes;
      std::int32_t *COut = Out.ColIdx.data() + Base + J0 * Lanes;
      for (int K = 0; K < Lanes; ++K) {
        Tracker &T = Trackers[K];
        if (T.Count > 0) {
          assert(T.ValId + (J1 - J0) <= Chunk.NnzEnd &&
                 "tracker escaped its chunk");
          const double *VIn = A.vals() + T.ValId + J0;
          const std::int32_t *CIn = A.colIdx() + T.ValId + J0;
          for (std::int64_t J = 0; J < J1 - J0; ++J) {
            VOut[J * Lanes + K] = static_cast<ValueT>(VIn[J]);
            COut[J * Lanes + K] = CIn[J];
          }
        } else {
          for (std::int64_t J = 0; J < J1 - J0; ++J) {
            VOut[J * Lanes + K] = ValueT(0);
            COut[J * Lanes + K] = 0;
          }
        }
      }
    }
    for (Tracker &T : Trackers) {
      if (T.Count > 0) {
        T.ValId += Run;
        T.Count -= Run;
      }
    }
    Steps += Run;
    return true;
  }

  bool emitPadStep() {
    std::size_t Need = Out.Vals.size() + static_cast<std::size_t>(Lanes);
    if (!Out.Vals.tryReserve(Need).ok() || !Out.ColIdx.tryReserve(Need).ok())
      return false;
    for (int K = 0; K < Lanes; ++K) {
      Out.Vals.push_back(ValueT(0));
      Out.ColIdx.push_back(0);
    }
    return true;
  }

  const CsrMatrix &A;
  const NnzChunk &Chunk;
  const ConverterConfig &Cfg;
  ChunkBuild<ValueT> &Out;
  int Lanes;
  std::vector<Tracker> Trackers;
  std::int32_t NextRow = 0;
  std::vector<std::int32_t> FeedList; ///< Sort-first ablation feed order.
  std::size_t FeedCursor = 0;
  bool TailsTaken = false;
};

/// Converts all chunks of \p A in parallel and stitches the results.
template <typename ValueT>
ConvertedStreams<ValueT> convertToCvrStreams(const CsrMatrix &A,
                                             const ConverterConfig &Cfg) {
  assert(Cfg.Lanes >= 1 && "need at least one lane");
  int NumThreads = Cfg.NumThreads > 0 ? Cfg.NumThreads : defaultThreadCount();

  ConvertedStreams<ValueT> S;
  std::vector<NnzChunk> Parts = partitionByNnz(A, NumThreads);
  std::vector<ChunkBuild<ValueT>> Builds(Parts.size());

  // Each chunk converts independently (the paper converts per-thread in
  // parallel; the chunks are also what makes the conversion scalable).
  // std::vector growth inside a chunk can still throw bad_alloc; it must
  // not escape the parallel region, so it lands in the same Ok flag the
  // AlignedBuffer try-paths use.
  ompParallelFor(static_cast<int>(Parts.size()), NumThreads, [&](int T) {
    try {
      ChunkConverter<ValueT> Conv(A, Parts[T], Cfg, Builds[T]);
      Conv.convert();
    } catch (const std::bad_alloc &) {
      Builds[T].Ok = false;
    }
  });
  for (const ChunkBuild<ValueT> &B : Builds)
    if (!B.Ok) {
      S.Ok = false;
      return S;
    }

  // Stitch the per-chunk outputs into contiguous shared streams. With a
  // single chunk the buffers move without a copy.
  if (!S.Tails.tryResize(Parts.size() * static_cast<std::size_t>(Cfg.Lanes))
           .ok()) {
    S.Ok = false;
    return S;
  }
  S.Tails.fill(-1);
  S.Chunks.resize(Parts.size());

  if (Parts.size() == 1) {
    ChunkBuild<ValueT> &B = Builds[0];
    CvrChunk &C = S.Chunks[0];
    C.NumSteps = B.NumSteps;
    C.RecEnd = static_cast<std::int64_t>(B.Recs.size());
    C.FirstRow = Parts[0].FirstRow;
    C.LastRow = Parts[0].LastRow;
    S.Vals = std::move(B.Vals);
    S.ColIdx = std::move(B.ColIdx);
    S.Recs = std::move(B.Recs);
    for (std::size_t K = 0; K < B.Tails.size(); ++K)
      S.Tails[K] = B.Tails[K];
  } else {
    std::int64_t TotalElems = 0, TotalRecs = 0;
    for (const ChunkBuild<ValueT> &B : Builds) {
      TotalElems += static_cast<std::int64_t>(B.Vals.size());
      TotalRecs += static_cast<std::int64_t>(B.Recs.size());
    }
    if (!S.Vals.tryResize(static_cast<std::size_t>(TotalElems)).ok() ||
        !S.ColIdx.tryResize(static_cast<std::size_t>(TotalElems)).ok()) {
      S.Ok = false;
      return S;
    }
    S.Recs.resize(static_cast<std::size_t>(TotalRecs));

    std::int64_t ElemCursor = 0, RecCursor = 0;
    for (std::size_t T = 0; T < Parts.size(); ++T) {
      ChunkBuild<ValueT> &B = Builds[T];
      CvrChunk &C = S.Chunks[T];
      C.ElemBase = ElemCursor;
      C.NumSteps = B.NumSteps;
      C.RecBase = RecCursor;
      C.RecEnd = RecCursor + static_cast<std::int64_t>(B.Recs.size());
      C.TailBase = static_cast<std::int64_t>(T) * Cfg.Lanes;
      C.FirstRow = Parts[T].FirstRow;
      C.LastRow = Parts[T].LastRow;
      if (!B.Vals.empty()) {
        std::memcpy(S.Vals.data() + ElemCursor, B.Vals.data(),
                    B.Vals.size() * sizeof(ValueT));
        std::memcpy(S.ColIdx.data() + ElemCursor, B.ColIdx.data(),
                    B.ColIdx.size() * sizeof(std::int32_t));
      }
      if (!B.Recs.empty())
        std::memcpy(S.Recs.data() + RecCursor, B.Recs.data(),
                    B.Recs.size() * sizeof(CvrRecord));
      for (std::size_t K = 0; K < B.Tails.size(); ++K)
        S.Tails[C.TailBase + K] = B.Tails[K];
      ElemCursor += static_cast<std::int64_t>(B.Vals.size());
      RecCursor += static_cast<std::int64_t>(B.Recs.size());
    }
  }

  // Rows the kernel must pre-zero: empty rows (never fed anywhere) and
  // every chunk boundary row (accumulated with += across chunks).
  for (std::int32_t R = 0; R < A.numRows(); ++R)
    if (A.rowLength(R) == 0)
      S.ZeroRows.push_back(R);
  for (const CvrChunk &C : S.Chunks) {
    if (C.FirstRow >= 0)
      S.ZeroRows.push_back(C.FirstRow);
    if (C.LastRow >= 0 && C.LastRow != C.FirstRow)
      S.ZeroRows.push_back(C.LastRow);
  }
  std::sort(S.ZeroRows.begin(), S.ZeroRows.end());
  S.ZeroRows.erase(std::unique(S.ZeroRows.begin(), S.ZeroRows.end()),
                   S.ZeroRows.end());
  return S;
}

} // namespace detail
} // namespace cvr

#endif // CVR_CORE_CVRCONVERTER_H
