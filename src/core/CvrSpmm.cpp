//===- core/CvrSpmm.cpp - Batched multi-RHS SpMM over CVR -----------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The chunk kernels are templated on a panel-operations policy (8-wide,
// 4-wide, or masked tail) and on accumulate mode, mirroring the SpMV
// kernel's structure: the per-step stream consumption is identical, but
// the per-lane accumulator is a panel-row vector instead of a scalar, and
// every record/tail write-back moves a whole register of columns. Records
// are rare relative to steps, so their shared-row atomics stay scalar.
//
//===----------------------------------------------------------------------===//

#include "core/CvrSpmm.h"

#include "core/CvrSpmv.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "simd/Simd.h"
#include "support/Annotations.h"
#include "support/ParallelFor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cvr {

namespace {

/// Full-width panel policy: one VecD8 of columns per lane.
struct Panel8 {
  using Vec = simd::VecD8;
  int width() const { return 8; }
  Vec zero() const { return simd::VecD8::zero(); }
  Vec load(const double *P) const { return simd::VecD8::loadu(P); }
  void store(Vec V, double *P) const { V.storeu(P); }
  Vec fmadd(Vec Acc, double S, const double *P) const {
    return Acc.fmadd(simd::VecD8::broadcast(S), load(P));
  }
  void spill(Vec V, double *Buf8) const { V.toArray(Buf8); }
};

/// Half-width panel policy for K ≡ 4 (mod 8) passes.
struct Panel4 {
  using Vec = simd::VecD4;
  int width() const { return 4; }
  Vec zero() const { return simd::VecD4::zero(); }
  Vec load(const double *P) const { return simd::VecD4::loadu(P); }
  void store(Vec V, double *P) const { V.storeu(P); }
  Vec fmadd(Vec Acc, double S, const double *P) const {
    return Acc.fmadd(simd::VecD4::broadcast(S), load(P));
  }
  void spill(Vec V, double *Buf8) const { V.toArray(Buf8); }
};

/// Masked-tail panel policy: any remainder width 1..7 in one masked pass,
/// so a degenerate K (say 7) never re-streams the matrix per column.
struct PanelTail {
  int Bw;
  unsigned Mask;
  using Vec = simd::VecD8;
  explicit PanelTail(int Bw) : Bw(Bw), Mask((1U << Bw) - 1U) {}
  int width() const { return Bw; }
  Vec zero() const { return simd::VecD8::zero(); }
  Vec load(const double *P) const { return simd::VecD8::maskLoadu(P, Mask); }
  void store(Vec V, double *P) const { V.maskStoreu(P, Mask); }
  Vec fmadd(Vec Acc, double S, const double *P) const {
    return Acc.fmadd(simd::VecD8::broadcast(S), load(P));
  }
  void spill(Vec V, double *Buf8) const { V.toArray(Buf8); }
};

/// One chunk of the register-blocked SpMM kernel: lane k accumulates a
/// whole panel row in a vector register, fed by one contiguous load of
/// X[Cols[step*8+k] * LdX .. +width) per element — no gathers. Structure
/// (records, stealing, tails) mirrors runChunkAvx with scalar write-backs
/// widened to panel rows.
template <class Panel, bool Accumulate>
CVR_HOT void runChunkSpmm(const CvrMatrix &M, const CvrChunk &C,
                          const double *X, std::size_t LdX, double *Y,
                          std::size_t LdY, Panel P, int PfDist) {
  constexpr int W = 8;
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  typename Panel::Vec VOut[W], TRes[W];
  for (int K = 0; K < W; ++K) {
    VOut[K] = P.zero();
    TRes[K] = P.zero();
  }

  // Finishes one row's panel block: exclusive rows store (or add, in
  // accumulate mode) a whole register; chunk-boundary rows spill and add
  // element-wise atomically because the neighbouring chunk writes them too.
  auto Finish = [&](std::int32_t Row, typename Panel::Vec V, bool Shared) {
    double *YRow = Y + static_cast<std::size_t>(Row) * LdY;
    if (Shared) {
      alignas(64) double Buf[W];
      P.spill(V, Buf);
      for (int J = 0; J < P.width(); ++J) {
#pragma omp atomic
        YRow[J] += Buf[J];
      }
    } else if (Accumulate) {
      P.store(P.load(YRow).add(V), YRow);
    } else {
      P.store(V, YRow);
    }
  };

  auto ApplyRecords = [&](std::int64_t Limit) {
    do {
      const CvrRecord &R = Recs[RecIdx];
      int Off = static_cast<int>(R.Pos & (W - 1));
      if (R.Steal)
        TRes[R.Wb] = TRes[R.Wb].add(VOut[Off]);
      else
        Finish(R.Wb, VOut[Off], R.Shared != 0);
      VOut[Off] = P.zero();
      ++RecIdx;
    } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      ApplyRecords((I + 1) * W);

    if (PfDist > 0 && I + PfDist < C.NumSteps) {
      // Touch the panel rows the pass consumes PfDist steps ahead (their
      // first line; a row is at most RhsBlock doubles) and stream the
      // matching value line. The index stream is sequential and short per
      // step, so the hardware prefetcher covers it.
      const std::int32_t *Pc = Cols + (I + PfDist) * W;
      for (int K = 0; K < W; ++K)
        __builtin_prefetch(X + static_cast<std::size_t>(Pc[K]) * LdX, 0, 1);
      __builtin_prefetch(Vals + (I + PfDist) * W, 0, 0);
    }

    for (int K = 0; K < W; ++K) {
      const double *XRow =
          X + static_cast<std::size_t>(Cols[I * W + K]) * LdX;
      VOut[K] = P.fmadd(VOut[K], Vals[I * W + K], XRow);
    }
  }

  if (RecIdx < RecEnd)
    ApplyRecords(std::numeric_limits<std::int64_t>::max());

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    Finish(Row, TRes[K], Row == C.FirstRow || Row == C.LastRow);
  }
}

/// Generic any-lane-width SpMM chunk (lane-count ablation / forced-generic
/// matrices). Runtime lane and block widths; not performance-critical.
void runChunkSpmmGeneric(const CvrMatrix &M, const CvrChunk &C,
                         const double *X, std::size_t LdX, double *Y,
                         std::size_t LdY, int Bw, int PfDist,
                         bool Accumulate) {
  const int W = M.lanes();
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  // Lane k's panel block lives at [k * Bw, (k + 1) * Bw).
  std::vector<double> VOut(static_cast<std::size_t>(W) * Bw, 0.0);
  std::vector<double> TRes(static_cast<std::size_t>(W) * Bw, 0.0);

  auto Finish = [&](std::int32_t Row, const double *V, bool Shared) {
    double *YRow = Y + static_cast<std::size_t>(Row) * LdY;
    if (Shared) {
      for (int J = 0; J < Bw; ++J) {
#pragma omp atomic
        YRow[J] += V[J];
      }
    } else if (Accumulate) {
      for (int J = 0; J < Bw; ++J)
        YRow[J] += V[J];
    } else {
      for (int J = 0; J < Bw; ++J)
        YRow[J] = V[J];
    }
  };

  auto ApplyRecord = [&](const CvrRecord &R) {
    int Off = static_cast<int>(R.Pos % W);
    double *V = VOut.data() + static_cast<std::size_t>(Off) * Bw;
    if (R.Steal) {
      double *T = TRes.data() + static_cast<std::size_t>(R.Wb) * Bw;
      for (int J = 0; J < Bw; ++J)
        T[J] += V[J];
    } else {
      Finish(R.Wb, V, R.Shared != 0);
    }
    std::fill_n(V, Bw, 0.0);
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      ApplyRecord(Recs[RecIdx++]);
    if (PfDist > 0 && I + PfDist < C.NumSteps) {
      const std::int32_t *Pc = Cols + (I + PfDist) * W;
      for (int K = 0; K < W; ++K)
        __builtin_prefetch(X + static_cast<std::size_t>(Pc[K]) * LdX, 0, 1);
    }
    for (int K = 0; K < W; ++K) {
      const double *XRow =
          X + static_cast<std::size_t>(Cols[I * W + K]) * LdX;
      double V = Vals[I * W + K];
      double *Acc = VOut.data() + static_cast<std::size_t>(K) * Bw;
      for (int J = 0; J < Bw; ++J)
        Acc[J] += V * XRow[J];
    }
  }
  while (RecIdx < RecEnd)
    ApplyRecord(Recs[RecIdx++]);

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    Finish(Row, TRes.data() + static_cast<std::size_t>(K) * Bw,
           Row == C.FirstRow || Row == C.LastRow);
  }
}

/// Fused twin of runChunkSpmm (no accumulate mode: blocked matrices
/// compose). Exclusive finalize sites spill the register block, apply the
/// per-column epilogue on the spilled row, and store the (possibly
/// transformed) values; shared rows accumulate raw partials for the
/// sequential cleanup pass.
template <class Panel>
CVR_HOT void runChunkSpmmFused(const CvrMatrix &M, const CvrChunk &C,
                               const double *X, std::size_t LdX, double *Y,
                               std::size_t LdY, Panel P, int PfDist,
                               const FusedBatchEpilogue &E, int J0,
                               BatchEpilogueAccum &Acc) {
  constexpr int W = 8;
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  typename Panel::Vec VOut[W], TRes[W];
  for (int K = 0; K < W; ++K) {
    VOut[K] = P.zero();
    TRes[K] = P.zero();
  }

  auto Finish = [&](std::int32_t Row, typename Panel::Vec V, bool Shared) {
    double *YRow = Y + static_cast<std::size_t>(Row) * LdY;
    alignas(64) double Buf[W];
    P.spill(V, Buf);
    if (Shared) {
      for (int J = 0; J < P.width(); ++J) {
#pragma omp atomic
        YRow[J] += Buf[J];
      }
    } else {
      batchRowApply(E, Row, J0, P.width(), Buf, Acc);
      for (int J = 0; J < P.width(); ++J)
        YRow[J] = Buf[J];
    }
  };

  auto ApplyRecords = [&](std::int64_t Limit) {
    do {
      const CvrRecord &R = Recs[RecIdx];
      int Off = static_cast<int>(R.Pos & (W - 1));
      if (R.Steal)
        TRes[R.Wb] = TRes[R.Wb].add(VOut[Off]);
      else
        Finish(R.Wb, VOut[Off], R.Shared != 0);
      VOut[Off] = P.zero();
      ++RecIdx;
    } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      ApplyRecords((I + 1) * W);

    if (PfDist > 0 && I + PfDist < C.NumSteps) {
      const std::int32_t *Pc = Cols + (I + PfDist) * W;
      for (int K = 0; K < W; ++K)
        __builtin_prefetch(X + static_cast<std::size_t>(Pc[K]) * LdX, 0, 1);
      __builtin_prefetch(Vals + (I + PfDist) * W, 0, 0);
    }

    for (int K = 0; K < W; ++K) {
      const double *XRow =
          X + static_cast<std::size_t>(Cols[I * W + K]) * LdX;
      VOut[K] = P.fmadd(VOut[K], Vals[I * W + K], XRow);
    }
  }

  if (RecIdx < RecEnd)
    ApplyRecords(std::numeric_limits<std::int64_t>::max());

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    Finish(Row, TRes[K], Row == C.FirstRow || Row == C.LastRow);
  }
}

/// Zeroes the Bw-wide slice of the rows the chunk sweep never plain-stores
/// (chunk-boundary rows accumulate, empty rows are never written).
void zeroRowsSlice(const CvrMatrix &M, double *Y, std::size_t LdY, int Bw) {
  for (std::int32_t R : M.zeroRows())
    std::fill_n(Y + static_cast<std::size_t>(R) * LdY, Bw, 0.0);
}

/// Runs chunks [Begin, End) of one pass across M.runThreads() threads,
/// dynamic schedule under over-decomposition (same policy as SpMV).
template <bool Accumulate>
void runSpmmChunkRange(const CvrMatrix &M, int Begin, int End,
                       const double *X, std::size_t LdX, double *Y,
                       std::size_t LdY, int Bw, int PfDist) {
  const std::vector<CvrChunk> &Chunks = M.chunks();
  int N = End - Begin;
  int Threads = std::min(M.runThreads(), N);
  bool UseAvx = M.lanes() == simd::DoubleLanes && !M.forcesGenericKernel();

  auto Body = [&](int T) {
    const CvrChunk &C = Chunks[Begin + T];
    if (!UseAvx) {
      runChunkSpmmGeneric(M, C, X, LdX, Y, LdY, Bw, PfDist, Accumulate);
      return;
    }
    if (Bw == 8)
      runChunkSpmm<Panel8, Accumulate>(M, C, X, LdX, Y, LdY, Panel8{},
                                       PfDist);
    else if (Bw == 4)
      runChunkSpmm<Panel4, Accumulate>(M, C, X, LdX, Y, LdY, Panel4{},
                                       PfDist);
    else
      runChunkSpmm<PanelTail, Accumulate>(M, C, X, LdX, Y, LdY,
                                          PanelTail(Bw), PfDist);
  };
  if (N > Threads)
    ompParallelForDynamic(N, Threads, Body);
  else
    ompParallelFor(N, Threads, Body);
}

/// One pass over the whole matrix covering Bw panel columns starting at
/// the (already offset) X / Y pointers.
void runSpmmPass(const CvrMatrix &M, const double *X, std::size_t LdX,
                 double *Y, std::size_t LdY, int Bw, int PfDist) {
  if (M.isBlocked()) {
    // Accumulate mode: clear the pass's column slice of all rows once,
    // then add each band's partial products; bands run sequentially.
    for (std::int32_t R = 0; R < M.numRows(); ++R)
      std::fill_n(Y + static_cast<std::size_t>(R) * LdY, Bw, 0.0);
    for (const CvrBand &B : M.bands())
      runSpmmChunkRange<true>(M, B.ChunkBegin, B.ChunkEnd, X, LdX, Y, LdY,
                              Bw, PfDist);
    return;
  }
  zeroRowsSlice(M, Y, LdY, Bw);
  runSpmmChunkRange<false>(M, 0, M.numChunks(), X, LdX, Y, LdY, Bw, PfDist);
}

/// Validates one SpMM panel request; the release-build replacement for the
/// old leading-dimension asserts.
[[nodiscard]] Status validateSpmmArgs(const double *X, std::size_t LdX,
                                      const double *Y, std::size_t LdY,
                                      int NumVectors) {
  if (NumVectors < 1)
    return Status::invalidArgument("SpMM needs NumVectors >= 1, got " +
                                   std::to_string(NumVectors));
  if (!X || !Y)
    return Status::invalidArgument("SpMM panels must be non-null");
  if (LdX < static_cast<std::size_t>(NumVectors))
    return Status::invalidArgument(
        "row-major X panel stride LdX=" + std::to_string(LdX) +
        " must cover NumVectors=" + std::to_string(NumVectors));
  if (LdY < static_cast<std::size_t>(NumVectors))
    return Status::invalidArgument(
        "row-major Y panel stride LdY=" + std::to_string(LdY) +
        " must cover NumVectors=" + std::to_string(NumVectors));
  return Status::okStatus();
}

/// Per-call SpMM counters: one structural sweep, never inside the hot
/// loops. Passes == 0 marks a composed fused call whose unfused half
/// already counted the run.
void recordCvrSpmmTelemetry(int NumVectors, int Passes, bool Fused) {
  if (!obs::telemetryEnabled())
    return;
  static obs::Counter &Runs = obs::counter("spmv.cvr.spmm_runs");
  static obs::Counter &Cols = obs::counter("spmv.cvr.spmm_cols");
  static obs::Counter &PassCount = obs::counter("spmv.cvr.spmm_passes");
  static obs::Counter &FusedRuns = obs::counter("spmv.cvr.spmm_fused_runs");
  if (Passes > 0) {
    Runs.inc();
    Cols.add(NumVectors);
    PassCount.add(Passes);
  }
  if (Fused)
    FusedRuns.inc();
}

/// Compressed-stream matrices (F32x64 values / U16Band indices) compose
/// SpMM from per-column SpMV runs through contiguous scratch: the
/// register-blocked panel kernels read the uncompressed streams directly,
/// and rewriting them per kind would triple their instantiation count for
/// a path whose payoff is amortizing *matrix* traffic — which compression
/// already shrinks. DESIGN.md section 17 records this scope gate.
[[nodiscard]] Status cvrSpmmComposed(const CvrMatrix &M, const double *X, std::size_t LdX,
                       double *Y, std::size_t LdY, int NumVectors,
                       const CvrSpmmOptions &Opts) try {
  const int Pf = snapPrefetchDistance(Opts.PrefetchDistance);
  std::vector<double> Xc(static_cast<std::size_t>(M.numCols()));
  std::vector<double> Yc(static_cast<std::size_t>(M.numRows()));
  for (int J = 0; J < NumVectors; ++J) {
    for (std::int32_t I = 0; I < M.numCols(); ++I)
      Xc[static_cast<std::size_t>(I)] =
          X[static_cast<std::size_t>(I) * LdX + J];
    cvrSpmv(M, Xc.data(), Yc.data(), Pf);
    for (std::int32_t I = 0; I < M.numRows(); ++I)
      Y[static_cast<std::size_t>(I) * LdY + J] =
          Yc[static_cast<std::size_t>(I)];
  }
  recordCvrSpmmTelemetry(NumVectors, NumVectors, /*Fused=*/false);
  return Status::okStatus();
} catch (const std::bad_alloc &) {
  return Status::resourceExhausted("composed SpMM: scratch allocation failed");
}

} // namespace

int snapRhsBlock(int B) {
  if (B <= 0)
    return 8;
  return B <= 4 ? 4 : 8;
}

Status cvrSpmm(const CvrMatrix &M, const double *X, std::size_t LdX,
               double *Y, std::size_t LdY, int NumVectors,
               const CvrSpmmOptions &Opts) {
  Status S = validateSpmmArgs(X, LdX, Y, LdY, NumVectors);
  if (!S.ok())
    return S;
  obs::TraceSpan Span("execute/spmm", "execute");
  Span.arg("cols", NumVectors);
  if (M.valueKind() != ValueKind::F64 ||
      M.colIndexKind() != ColIndexKind::U32)
    return cvrSpmmComposed(M, X, LdX, Y, LdY, NumVectors, Opts);
  const int Rhs = snapRhsBlock(Opts.RhsBlock);
  const int Pf = snapPrefetchDistance(Opts.PrefetchDistance);
  int Passes = 0;
  for (int J0 = 0; J0 < NumVectors;) {
    int Bw = std::min(Rhs, NumVectors - J0);
    runSpmmPass(M, X + J0, LdX, Y + J0, LdY, Bw, Pf);
    J0 += Bw;
    ++Passes;
  }
  recordCvrSpmmTelemetry(NumVectors, Passes, /*Fused=*/false);
  return Status::okStatus();
}

Status cvrSpmmFused(const CvrMatrix &M, const double *X, std::size_t LdX,
                    double *Y, std::size_t LdY, int NumVectors,
                    FusedBatchEpilogue &E, const CvrSpmmOptions &Opts) {
  Status S = validateSpmmArgs(X, LdX, Y, LdY, NumVectors);
  if (!S.ok())
    return S;
  if (E.Op != EpilogueOp::None && E.NumVectors != NumVectors)
    return Status::invalidArgument(
        "batch epilogue covers " + std::to_string(E.NumVectors) +
        " columns but the SpMM call has " + std::to_string(NumVectors));
  if (E.Op == EpilogueOp::None) {
    for (int J = 0; J < NumVectors; ++J) {
      if (E.Acc1)
        E.Acc1[J] = 0.0;
      if (E.Acc2)
        E.Acc2[J] = 0.0;
    }
    return cvrSpmm(M, X, LdX, Y, LdY, NumVectors, Opts);
  }

  bool UseAvx = M.lanes() == simd::DoubleLanes && !M.forcesGenericKernel();
  if (M.isBlocked() || !UseAvx || M.valueKind() != ValueKind::F64 ||
      M.colIndexKind() != ColIndexKind::U32) {
    // Accumulate mode finishes no row until the last band (the generic
    // kernel has no fused finalize sites, and compressed streams take the
    // composed path throughout); compose.
    S = cvrSpmm(M, X, LdX, Y, LdY, NumVectors, Opts);
    if (!S.ok())
      return S;
    obs::TraceSpan Span("execute/fused-epilogue", "execute");
    applyBatchEpilogueScalar(E, Y, LdY, M.numRows());
    recordCvrSpmmTelemetry(NumVectors, /*Passes=*/0, /*Fused=*/true);
    return Status::okStatus();
  }

  obs::TraceSpan Span("execute/spmm-fused", "execute");
  Span.arg("cols", NumVectors);
  const int Rhs = snapRhsBlock(Opts.RhsBlock);
  const int Pf = snapPrefetchDistance(Opts.PrefetchDistance);

  const std::vector<CvrChunk> &Chunks = M.chunks();
  const int N = static_cast<int>(Chunks.size());
  const int Threads = std::min(M.runThreads(), std::max(N, 1));

  // Per-chunk partial accumulators, merged in chunk index order per pass.
  // Stack storage keeps batched solver iterations allocation-free; heavy
  // over-decomposition spills to the heap once per call.
  constexpr int MaxStackChunks = 256;
  BatchEpilogueAccum StackAccs[MaxStackChunks];
  std::vector<BatchEpilogueAccum> HeapAccs;
  BatchEpilogueAccum *Accs = StackAccs;
  if (N > MaxStackChunks) {
    HeapAccs.resize(static_cast<std::size_t>(N));
    Accs = HeapAccs.data();
  }

  int Passes = 0;
  for (int J0 = 0; J0 < NumVectors;) {
    const int Bw = std::min(Rhs, NumVectors - J0);
    const double *Xp = X + J0;
    double *Yp = Y + J0;
    zeroRowsSlice(M, Yp, LdY, Bw);

    auto Body = [&](int T) {
      Accs[T] = BatchEpilogueAccum{};
      const CvrChunk &C = Chunks[T];
      if (Bw == 8)
        runChunkSpmmFused<Panel8>(M, C, Xp, LdX, Yp, LdY, Panel8{}, Pf, E,
                                  J0, Accs[T]);
      else if (Bw == 4)
        runChunkSpmmFused<Panel4>(M, C, Xp, LdX, Yp, LdY, Panel4{}, Pf, E,
                                  J0, Accs[T]);
      else
        runChunkSpmmFused<PanelTail>(M, C, Xp, LdX, Yp, LdY, PanelTail(Bw),
                                     Pf, E, J0, Accs[T]);
    };
    if (N > Threads)
      ompParallelForDynamic(N, Threads, Body);
    else
      ompParallelFor(N, Threads, Body);

    BatchEpilogueAccum Total;
    for (int T = 0; T < N; ++T)
      mergeBatchAccum(E, Total, Accs[T]);

    // Sequential cleanup: boundary + empty rows in zero-row order, merged
    // last; their panel rows hold raw partial sums at this point.
    BatchEpilogueAccum Cleanup;
    for (std::int32_t R : M.zeroRows())
      batchRowApply(E, R, J0, Bw, Yp + static_cast<std::size_t>(R) * LdY,
                    Cleanup);
    mergeBatchAccum(E, Total, Cleanup);
    storeBatchAccum(E, Total, J0, Bw);

    J0 += Bw;
    ++Passes;
  }
  recordCvrSpmmTelemetry(NumVectors, Passes, /*Fused=*/true);
  return Status::okStatus();
}

Status CvrKernel::runBatch(const double *X, std::size_t LdX, double *Y,
                           std::size_t LdY, int NumVectors) const {
  CvrSpmmOptions SOpts;
  SOpts.RhsBlock = options().RhsBlock;
  SOpts.PrefetchDistance = options().PrefetchDistance;
  return cvrSpmm(matrix(), X, LdX, Y, LdY, NumVectors, SOpts);
}

Status CvrKernel::runBatchFused(const double *X, std::size_t LdX, double *Y,
                                std::size_t LdY, int NumVectors,
                                FusedBatchEpilogue &E) const {
  CvrSpmmOptions SOpts;
  SOpts.RhsBlock = options().RhsBlock;
  SOpts.PrefetchDistance = options().PrefetchDistance;
  return cvrSpmmFused(matrix(), X, LdX, Y, LdY, NumVectors, E, SOpts);
}

} // namespace cvr
