//===- core/BatchEpilogue.cpp - Scalar batch epilogue sweep ---------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "formats/BatchEpilogue.h"

#include <algorithm>

namespace cvr {

void applyBatchEpilogueScalar(FusedBatchEpilogue &E, double *Y,
                              std::size_t LdY, std::int64_t NumRows) {
  const int K = E.NumVectors;
  for (int J = 0; J < K; ++J) {
    if (E.Acc1)
      E.Acc1[J] = 0.0;
    if (E.Acc2)
      E.Acc2[J] = 0.0;
  }
  if (E.Op == EpilogueOp::None)
    return;
  // One register block of columns at a time, all rows per block, so the
  // accumulator merge order matches the fused kernel's per-pass reduction.
  for (int J0 = 0; J0 < K; J0 += 8) {
    int Bw = std::min(8, K - J0);
    BatchEpilogueAccum A;
    for (std::int64_t R = 0; R < NumRows; ++R)
      batchRowApply(E, static_cast<std::int32_t>(R), J0, Bw,
                    Y + static_cast<std::size_t>(R) * LdY + J0, A);
    storeBatchAccum(E, A, J0, Bw);
  }
}

} // namespace cvr
