//===- core/CvrFormat.cpp - CVR format (double precision) -----------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/CvrFormat.h"

#include "core/CvrConverter.h"

#include <cassert>

namespace cvr {

CvrMatrix CvrMatrix::fromCsr(const CsrMatrix &A, const CvrOptions &Opts) {
  detail::ConverterConfig Cfg;
  Cfg.Lanes = Opts.Lanes;
  Cfg.NumThreads = Opts.NumThreads;
  Cfg.EnableStealing = Opts.EnableStealing;
  Cfg.PadEvenSteps = true; // The f64 kernel double-pumps column loads.
  Cfg.SortFeedRowsByLength = Opts.SortFeedRows;

  detail::ConvertedStreams<double> S =
      detail::convertToCvrStreams<double>(A, Cfg);

  CvrMatrix M;
  M.NumRows = A.numRows();
  M.NumCols = A.numCols();
  M.Nnz = A.numNonZeros();
  M.Lanes = Opts.Lanes;
  M.ForceGeneric = Opts.ForceGenericKernel;
  M.Vals = std::move(S.Vals);
  M.ColIdx = std::move(S.ColIdx);
  M.Recs = std::move(S.Recs);
  M.Tails = std::move(S.Tails);
  M.Chunks = std::move(S.Chunks);
  M.ZeroRows = std::move(S.ZeroRows);

  assert(M.isValid() && "conversion produced an inconsistent CVR matrix");
  return M;
}

std::size_t CvrMatrix::formatBytes() const {
  return Vals.size() * sizeof(double) + ColIdx.size() * sizeof(std::int32_t) +
         Recs.size() * sizeof(CvrRecord) +
         Tails.size() * sizeof(std::int32_t) +
         Chunks.size() * sizeof(CvrChunk) +
         ZeroRows.size() * sizeof(std::int32_t);
}

bool CvrMatrix::isValid() const {
  std::int64_t RealElems = 0;
  for (const CvrChunk &C : Chunks) {
    if (C.NumSteps % 2 != 0 && Lanes == 8)
      return false;
    std::int64_t Prev = -1;
    for (std::int64_t R = C.RecBase; R < C.RecEnd; ++R) {
      const CvrRecord &Rec = Recs[R];
      if (Rec.Pos < Prev)
        return false; // Records must be position-ordered per chunk.
      Prev = Rec.Pos;
      if (Rec.Steal) {
        if (Rec.Wb < 0 || Rec.Wb >= Lanes)
          return false;
        if (Tails[C.TailBase + Rec.Wb] < 0)
          return false; // Steal slot without a tail row.
      } else if (Rec.Wb < 0 || Rec.Wb >= NumRows) {
        return false;
      }
    }
    for (std::int64_t I = C.ElemBase, E = C.ElemBase + C.NumSteps * Lanes;
         I < E; ++I) {
      // Pads are (value 0, column 0); count everything else.
      if (ColIdx[I] != 0 || Vals[I] != 0.0)
        ++RealElems;
    }
  }
  // Every nonzero appears exactly once, except that genuine (0, col 0)
  // entries are indistinguishable from pads, so allow RealElems <= Nnz.
  return RealElems <= Nnz;
}

} // namespace cvr
