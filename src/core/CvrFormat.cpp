//===- core/CvrFormat.cpp - CVR format (double precision) -----------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/CvrFormat.h"

#include "core/CvrConverter.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "parallel/Partition.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cvr {

namespace {

/// Appends one conversion's streams onto the accumulated streams, rebasing
/// every chunk offset. Returns the index of the first appended chunk, or
/// -1 when the grown streams cannot be allocated (Acc is then stale and
/// must be discarded).
std::int32_t appendStreams(detail::ConvertedStreams<double> &Acc,
                           detail::ConvertedStreams<double> &&S) {
  auto ChunkBase = static_cast<std::int32_t>(Acc.Chunks.size());
  auto ElemBase = static_cast<std::int64_t>(Acc.Vals.size());
  auto RecBase = static_cast<std::int64_t>(Acc.Recs.size());
  auto TailBase = static_cast<std::int64_t>(Acc.Tails.size());

  if (ChunkBase == 0) {
    Acc = std::move(S);
    return 0;
  }

  if (!Acc.Vals.tryResize(Acc.Vals.size() + S.Vals.size()).ok() ||
      !Acc.ColIdx.tryResize(Acc.ColIdx.size() + S.ColIdx.size()).ok() ||
      !Acc.Tails.tryReserve(Acc.Tails.size() + S.Tails.size()).ok())
    return -1;
  if (!S.Vals.empty()) {
    std::memcpy(Acc.Vals.data() + ElemBase, S.Vals.data(),
                S.Vals.size() * sizeof(double));
    std::memcpy(Acc.ColIdx.data() + ElemBase, S.ColIdx.data(),
                S.ColIdx.size() * sizeof(std::int32_t));
  }
  Acc.Recs.insert(Acc.Recs.end(), S.Recs.begin(), S.Recs.end());
  Acc.Tails.resize(Acc.Tails.size() + S.Tails.size());
  for (std::size_t K = 0; K < S.Tails.size(); ++K)
    Acc.Tails[TailBase + K] = S.Tails[K];

  for (CvrChunk C : S.Chunks) {
    C.ElemBase += ElemBase;
    C.RecBase += RecBase;
    C.RecEnd += RecBase;
    C.TailBase += TailBase;
    Acc.Chunks.push_back(C);
  }
  return ChunkBase;
}

/// Folds the finished structure into the conversion counters. Reading
/// the built streams after the fact keeps the converter's hot loops
/// untouched: record counts, steal totals, and step balance are all
/// recoverable from what tryFromCsr is about to return anyway.
void recordConvertTelemetry(const CvrMatrix &M) {
  if (!obs::telemetryEnabled())
    return;
  static obs::Counter &Calls = obs::counter("convert.cvr.calls");
  static obs::Counter &Nnz = obs::counter("convert.cvr.nnz");
  static obs::Counter &Chunks = obs::counter("convert.cvr.chunks");
  static obs::Counter &Steps = obs::counter("convert.cvr.steps");
  static obs::Counter &Records = obs::counter("convert.cvr.records");
  static obs::Counter &Steals = obs::counter("convert.cvr.steal_records");
  static obs::Counter &Bands = obs::counter("convert.cvr.bands");
  static obs::Histogram &ChunkSteps =
      obs::histogram("convert.cvr.chunk_steps");
  static obs::Gauge &Imbalance =
      obs::gauge("convert.cvr.last_imbalance_x1000");

  Calls.inc();
  Nnz.add(M.numNonZeros());
  Chunks.add(static_cast<std::int64_t>(M.chunks().size()));
  Bands.add(static_cast<std::int64_t>(M.bands().size()));
  std::int64_t RecordCount = 0, StealCount = 0;
  std::int64_t TotalSteps = 0, MaxSteps = 0;
  const CvrRecord *Recs = M.recs();
  for (const CvrChunk &C : M.chunks()) {
    RecordCount += C.RecEnd - C.RecBase;
    for (std::int64_t R = C.RecBase; R < C.RecEnd; ++R)
      StealCount += Recs[R].Steal ? 1 : 0;
    TotalSteps += C.NumSteps;
    MaxSteps = std::max<std::int64_t>(MaxSteps, C.NumSteps);
    ChunkSteps.observe(C.NumSteps);
  }
  Records.add(RecordCount);
  Steals.add(StealCount);
  Steps.add(TotalSteps);
  if (!M.chunks().empty() && TotalSteps > 0)
    Imbalance.set(MaxSteps * 1000 * static_cast<std::int64_t>(
                                        M.chunks().size()) /
                  TotalSteps);
}

} // namespace

CvrMatrix CvrMatrix::fromCsr(const CsrMatrix &A, const CvrOptions &Opts) {
  StatusOr<CvrMatrix> R = tryFromCsr(A, Opts);
  if (!R.ok()) {
    // The infallible API has no error channel; failing loudly beats
    // returning a structure a kernel would misindex through.
    std::fprintf(stderr, "cvr: fatal: CVR conversion failed: %s\n",
                 R.status().toString().c_str());
    std::abort();
  }
  return std::move(*R);
}

StatusOr<CvrMatrix> CvrMatrix::tryFromCsr(const CsrMatrix &A,
                                          const CvrOptions &Opts) try {
  if (CVR_FAIL_POINT("convert.cvr.fail"))
    return Status::internal(
        "convert.cvr.fail fail point: simulated pathological conversion");
  if (Opts.Lanes < 1)
    return Status::invalidArgument("CvrOptions.Lanes must be >= 1, got " +
                                   std::to_string(Opts.Lanes));
  if (A.numRows() < 0 || A.numCols() < 0)
    return Status::invalidArgument("matrix has negative shape");

  obs::TraceSpan Span("convert/cvr", "convert");
  Span.arg("rows", A.numRows());
  Span.arg("nnz", A.numNonZeros());

  int Threads = Opts.NumThreads > 0 ? Opts.NumThreads : defaultThreadCount();
  int Mult = std::max(1, Opts.ChunkMultiplier);

  detail::ConverterConfig Cfg;
  Cfg.Lanes = Opts.Lanes;
  Cfg.NumThreads = Threads * Mult; // Chunk count (over-decomposition).
  Cfg.EnableStealing = Opts.EnableStealing;
  Cfg.PadEvenSteps = true; // The f64 kernel double-pumps column loads.
  Cfg.SortFeedRowsByLength = Opts.SortFeedRows;

  CvrMatrix M;
  M.NumRows = A.numRows();
  M.NumCols = A.numCols();
  M.Nnz = A.numNonZeros();
  M.Lanes = Opts.Lanes;
  M.ChunkMult = Mult;
  M.ForceGeneric = Opts.ForceGenericKernel;

  // Column blocking: band width in columns, one x element = 8 bytes.
  std::int32_t ColsPerBand = 0;
  if (Opts.ColBlockBytes > 0 && A.numCols() > 0) {
    std::int64_t W = std::max<std::int64_t>(Opts.Lanes,
                                            Opts.ColBlockBytes / 8);
    if (W < A.numCols())
      ColsPerBand = static_cast<std::int32_t>(W);
  }

  if (ColsPerBand == 0) {
    detail::ConvertedStreams<double> S =
        detail::convertToCvrStreams<double>(A, Cfg);
    if (!S.Ok)
      return Status::resourceExhausted(
          "CVR conversion: stream storage allocation failed");
    M.Vals = std::move(S.Vals);
    M.ColIdx = std::move(S.ColIdx);
    M.Recs = std::move(S.Recs);
    M.Tails = std::move(S.Tails);
    M.Chunks = std::move(S.Chunks);
    M.ZeroRows = std::move(S.ZeroRows);
    if (!M.isValid())
      return Status::internal(
          "CVR conversion produced an inconsistent structure");
    if (Status CS = M.compressStreams(Opts.Values, Opts.Indices); !CS.ok())
      return CS;
    recordConvertTelemetry(M);
    return M;
  }

  // Blocked build: one independent conversion per column band, stitched
  // into the shared streams. The per-band CSR slices keep global column
  // indices, so the kernel gathers from the full x (and the converter's
  // column-0 pads stay in range). Blocked matrices run in accumulate mode:
  // the kernel zeroes all of y up front, so ZeroRows stays empty.
  detail::ConvertedStreams<double> Acc;
  for (std::int32_t C0 = 0; C0 < A.numCols(); C0 += ColsPerBand) {
    std::int32_t C1 = std::min(A.numCols(), C0 + ColsPerBand);
    CsrMatrix Slice = A.columnBand(C0, C1);
    detail::ConvertedStreams<double> S =
        detail::convertToCvrStreams<double>(Slice, Cfg);
    if (!S.Ok)
      return Status::resourceExhausted(
          "CVR conversion: band stream allocation failed (band at column " +
          std::to_string(C0) + ")");
    std::int32_t ChunkBase = appendStreams(Acc, std::move(S));
    if (ChunkBase < 0)
      return Status::resourceExhausted(
          "CVR conversion: stitching band streams exceeded memory (band at "
          "column " +
          std::to_string(C0) + ")");
    M.Bands.push_back(
        {C0, C1, ChunkBase, static_cast<std::int32_t>(Acc.Chunks.size())});
  }
  M.Vals = std::move(Acc.Vals);
  M.ColIdx = std::move(Acc.ColIdx);
  M.Recs = std::move(Acc.Recs);
  M.Tails = std::move(Acc.Tails);
  M.Chunks = std::move(Acc.Chunks);

  if (!M.isValid())
    return Status::internal(
        "CVR conversion produced an inconsistent blocked structure");
  if (Status CS = M.compressStreams(Opts.Values, Opts.Indices); !CS.ok())
    return CS;
  recordConvertTelemetry(M);
  return M;
} catch (const std::bad_alloc &) {
  // std::vector growth (records, chunk tables, band slices) can still
  // throw; fold it into the same recoverable outcome.
  return Status::resourceExhausted(
      "CVR conversion: auxiliary allocation failed");
}

void CvrMatrix::rebuildChunkColBases() {
  ChunkColBase.assign(Chunks.size(), 0);
  for (const CvrBand &B : Bands)
    for (std::int32_t C = B.ChunkBegin;
         C < B.ChunkEnd && C < static_cast<std::int32_t>(Chunks.size()); ++C)
      ChunkColBase[static_cast<std::size_t>(C)] = B.ColBegin;
}

Status CvrMatrix::compressStreams(ValueKind VK, ColIndexKind IK) {
  rebuildChunkColBases();

  if (IK == ColIndexKind::U16Band) {
    // Eligibility: every band (the whole column range when unblocked)
    // must span <= 65536 columns so band-local deltas fit uint16.
    std::int64_t WidestBand = NumCols;
    if (!Bands.empty()) {
      WidestBand = 0;
      for (const CvrBand &B : Bands)
        WidestBand =
            std::max<std::int64_t>(WidestBand, B.ColEnd - B.ColBegin);
    }
    if (WidestBand > 65536) {
      NarrowIdxFallback = true; // Checked fallback: keep 32-bit indices.
    } else {
      if (!ColIdx16.tryResize(ColIdx.size()).ok())
        return Status::resourceExhausted(
            "CVR compression: narrow index stream allocation failed");
      for (std::size_t CI = 0; CI < Chunks.size(); ++CI) {
        const CvrChunk &C = Chunks[CI];
        const std::int32_t Base = ChunkColBase[CI];
        for (std::int64_t I = C.ElemBase,
                          E = C.ElemBase + C.NumSteps * Lanes;
             I < E; ++I) {
          std::int32_t Col = ColIdx[static_cast<std::size_t>(I)];
          // Pads are (value 0, column 0) in absolute terms; store them as
          // delta 0 so the widened gather hits the band base, in range.
          std::int32_t Delta =
              (Col == 0 && Vals[static_cast<std::size_t>(I)] == 0.0)
                  ? 0
                  : Col - Base;
          assert(Delta >= 0 && Delta <= 65535 &&
                 "band-local column escaped the uint16 range");
          ColIdx16[static_cast<std::size_t>(I)] =
              static_cast<std::uint16_t>(Delta);
        }
      }
      ColIdx = AlignedBuffer<std::int32_t>();
      IKind = ColIndexKind::U16Band;
    }
  }

  if (VK == ValueKind::F32x64) {
    if (!Vals32.tryResize(Vals.size()).ok())
      return Status::resourceExhausted(
          "CVR compression: fp32 value stream allocation failed");
    for (std::size_t I = 0; I < Vals.size(); ++I)
      Vals32[I] = static_cast<float>(Vals[I]);
    Vals = AlignedBuffer<double>();
    VKind = ValueKind::F32x64;
  }
  return Status::okStatus();
}

int CvrMatrix::runThreads() const {
  std::size_t ChunksPerBand =
      Bands.empty() ? Chunks.size()
                    : static_cast<std::size_t>(Bands[0].ChunkEnd -
                                               Bands[0].ChunkBegin);
  if (ChunksPerBand == 0)
    return 1;
  return std::max(1, static_cast<int>(ChunksPerBand) / std::max(1, ChunkMult));
}

std::size_t CvrMatrix::formatBytes() const {
  return Vals.size() * sizeof(double) + ColIdx.size() * sizeof(std::int32_t) +
         Vals32.size() * sizeof(float) +
         ColIdx16.size() * sizeof(std::uint16_t) +
         Recs.size() * sizeof(CvrRecord) +
         Tails.size() * sizeof(std::int32_t) +
         Chunks.size() * sizeof(CvrChunk) +
         ZeroRows.size() * sizeof(std::int32_t) +
         Bands.size() * sizeof(CvrBand);
}

bool CvrMatrix::isValid() const {
  if (ChunkMult < 1)
    return false;
  // Exactly one storage per stream, matching the declared kinds.
  const bool NV = VKind == ValueKind::F32x64;
  const bool NI = IKind == ColIndexKind::U16Band;
  if (NV ? !Vals.empty() : !Vals32.empty())
    return false;
  if (NI ? !ColIdx.empty() : !ColIdx16.empty())
    return false;
  std::size_t ValCount = NV ? Vals32.size() : Vals.size();
  std::size_t IdxCount = NI ? ColIdx16.size() : ColIdx.size();
  if (ValCount != IdxCount)
    return false;
  if (!Bands.empty()) {
    // Bands tile both the chunk list and the column range, in order, with
    // one uniform chunk count (one conversion per band).
    if (ZeroRows.size() != 0)
      return false; // Blocked kernels zero all of y; the list is unused.
    std::int32_t PrevCol = 0, PrevChunk = 0;
    std::int32_t PerBand = Bands[0].ChunkEnd - Bands[0].ChunkBegin;
    for (const CvrBand &B : Bands) {
      if (B.ColBegin != PrevCol || B.ColEnd <= B.ColBegin ||
          B.ColEnd > NumCols)
        return false;
      if (B.ChunkBegin != PrevChunk || B.ChunkEnd <= B.ChunkBegin ||
          B.ChunkEnd - B.ChunkBegin != PerBand)
        return false;
      PrevCol = B.ColEnd;
      PrevChunk = B.ChunkEnd;
    }
    if (PrevCol != NumCols ||
        PrevChunk != static_cast<std::int32_t>(Chunks.size()))
      return false;
  }

  std::int64_t RealElems = 0;
  for (std::size_t CI = 0; CI < Chunks.size(); ++CI) {
    const CvrChunk &C = Chunks[CI];
    // The band owning this chunk bounds its real columns; unblocked
    // matrices use the full column range.
    std::int32_t ColLo = 0, ColHi = NumCols;
    for (const CvrBand &B : Bands)
      if (static_cast<std::int32_t>(CI) >= B.ChunkBegin &&
          static_cast<std::int32_t>(CI) < B.ChunkEnd) {
        ColLo = B.ColBegin;
        ColHi = B.ColEnd;
        break;
      }
    if (C.NumSteps % 2 != 0 && Lanes == 8)
      return false;
    std::int64_t Prev = -1;
    for (std::int64_t R = C.RecBase; R < C.RecEnd; ++R) {
      const CvrRecord &Rec = Recs[R];
      if (Rec.Pos < Prev)
        return false; // Records must be position-ordered per chunk.
      Prev = Rec.Pos;
      if (Rec.Steal) {
        if (Rec.Wb < 0 || Rec.Wb >= Lanes)
          return false;
        if (Tails[C.TailBase + Rec.Wb] < 0)
          return false; // Steal slot without a tail row.
      } else if (Rec.Wb < 0 || Rec.Wb >= NumRows) {
        return false;
      }
    }
    for (std::int64_t I = C.ElemBase, E = C.ElemBase + C.NumSteps * Lanes;
         I < E; ++I) {
      // Pads are (value 0, raw column 0) — raw is the absolute column for
      // U32 and the band-local delta for U16Band; count everything else.
      std::int32_t Raw = rawColAt(I);
      double V = valueAt(I);
      if (Raw != 0 || V != 0.0) {
        std::int32_t Col = NI ? ColLo + Raw : Raw;
        if (Col < ColLo || Col >= ColHi)
          return false; // Real element escaped its column band.
        ++RealElems;
      }
    }
  }
  // Every nonzero appears exactly once, except that genuine (0, col 0)
  // entries are indistinguishable from pads, so allow RealElems <= Nnz.
  return RealElems <= Nnz;
}

} // namespace cvr
