//===- core/CvrSpmv.cpp - SpMV over the CVR format ------------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Execution-engine variants: the chunk kernels are templated on the
// software-prefetch distance (steps ahead at which x gather targets are
// touched) and on accumulate mode (column-blocked matrices add each band's
// partial products into y instead of storing finished rows). Chunk
// over-decomposition runs more chunks than threads under a dynamic
// schedule. All variants compute the same y; the autotuner in src/engine
// picks among them per matrix.
//
//===----------------------------------------------------------------------===//

#include "core/CvrSpmv.h"

#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "simd/Simd.h"
#include "support/Annotations.h"
#include "support/ParallelFor.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cvr {

namespace {

/// Scatters a finished lane value to y (feed records and tail flushes).
/// Chunk-boundary rows are accumulated atomically because the neighbouring
/// chunk contributes to them too; every other row has exactly one writer
/// within a band, so a plain store (or plain add, in accumulate mode —
/// bands run sequentially) suffices.
template <bool Accumulate>
CVR_HOT inline void writeBack(double *Y, std::int32_t Row, double V,
                              bool Shared) {
  if (Shared) {
#pragma omp atomic
    Y[Row] += V;
  } else if (Accumulate) {
    Y[Row] += V;
  } else {
    Y[Row] = V;
  }
}

/// Applies every record with Pos < Limit: feed records scatter the lane's
/// finished dot product straight into y (one masked scatter for the common
/// exclusive-row case; accumulate mode turns it into gather+add+scatter),
/// steal records accumulate into the chunk's t_result slots, and the
/// applied lanes are zeroed. Returns the updated v_out.
template <bool Accumulate>
CVR_HOT inline simd::VecD8 applyRecords(simd::VecD8 VOut,
                                        const CvrRecord *Recs,
                                std::int64_t &RecIdx, std::int64_t RecEnd,
                                std::int64_t Limit, double *Y,
                                double *TResult) {
#if CVR_SIMD_AVX512
  alignas(32) std::int32_t WbBuf[8];
  __mmask8 FeedMask = 0, ClearMask = 0;
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 7);
    auto Bit = static_cast<__mmask8>(1U << Off);
    if (!R.Steal && !R.Shared) {
      WbBuf[Off] = R.Wb;
      FeedMask |= Bit;
    } else {
      // Single-lane extraction via a masked horizontal add.
      double V = _mm512_mask_reduce_add_pd(Bit, VOut.Reg);
      if (R.Steal) {
        TResult[R.Wb] += V;
      } else {
#pragma omp atomic
        Y[R.Wb] += V;
      }
    }
    ClearMask |= Bit;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  if (FeedMask) {
    __m256i Idx =
        _mm256_load_si256(reinterpret_cast<const __m256i *>(WbBuf));
    __m512d Out = VOut.Reg;
    if constexpr (Accumulate) {
      // Distinct rows per batch (a row finishes once per chunk), so the
      // gather+add+scatter never self-conflicts.
      __m512d Old = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), FeedMask,
                                             Idx, Y, 8);
      Out = _mm512_add_pd(Old, VOut.Reg);
    }
    _mm512_mask_i32scatter_pd(Y, FeedMask, Idx, Out, 8);
  }
  VOut.Reg = _mm512_maskz_mov_pd(static_cast<__mmask8>(~ClearMask),
                                 VOut.Reg);
  return VOut;
#else
  alignas(64) double Buf[8];
  VOut.toArray(Buf);
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 7);
    if (R.Steal)
      TResult[R.Wb] += Buf[Off];
    else
      writeBack<Accumulate>(Y, R.Wb, Buf[Off], R.Shared);
    Buf[Off] = 0.0;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  return simd::VecD8::fromArray(Buf);
#endif
}

/// One chunk of the vectorized 8-lane kernel (Algorithm 4). PfDist > 0
/// issues software prefetches of the x gather targets (and the vals/cols
/// streams) PfDist steps ahead, using the already-streamed column indices;
/// the host has no AVX-512PF, so the prefetches are scalar.
///
/// NarrowIdx streams band-local uint16 deltas (widened + rebased onto
/// \p ColBase at load time) and NarrowVal streams fp32 values (widened to
/// fp64 before the FMA) — the stream-compression axes. The loop structure
/// — one index load per two steps, one value load and one gather per step
/// — is identical across all four combinations; only the load width
/// changes.
template <int PfDist, bool Accumulate, bool NarrowIdx, bool NarrowVal>
CVR_HOT void runChunkAvx(const CvrMatrix &M, const CvrChunk &C,
                         const double *X,
                 double *Y, std::int32_t ColBase) {
  static_assert(PfDist % 2 == 0, "prefetch pairs with the double-pumped "
                                 "column loads, so the distance stays even");
  constexpr int W = 8;
  const double *Vals = NarrowVal ? nullptr : M.vals() + C.ElemBase;
  const float *Vals32 = NarrowVal ? M.vals32() + C.ElemBase : nullptr;
  const std::int32_t *Cols = NarrowIdx ? nullptr : M.colIdx() + C.ElemBase;
  const std::uint16_t *ColsN =
      NarrowIdx ? M.colIdx16() + C.ElemBase : nullptr;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  alignas(64) double TResult[W] = {0};
  simd::VecD8 VOut = simd::VecD8::zero();
  simd::VecI16 Cols16{};

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    // Write-back records that fall into this step (the lane's dot product
    // is complete just before the step's elements are consumed).
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      VOut = applyRecords<Accumulate>(VOut, Recs, RecIdx, RecEnd,
                                      (I + 1) * W, Y, TResult);

    if constexpr (PfDist > 0) {
      if ((I & 1) == 0 && I + PfDist + 1 < C.NumSteps) {
        // Pull the index line two prefetch windows out so the window at
        // PfDist reads cached indices, then touch the 16 x targets for
        // the step pair at PfDist and stream the matching value lines.
        if constexpr (NarrowIdx) {
          __builtin_prefetch(ColsN + (I + 2 * PfDist) * W, 0, 0);
          const std::uint16_t *Pc = ColsN + (I + PfDist) * W;
          for (int K = 0; K < 2 * W; ++K)
            __builtin_prefetch(X + ColBase + Pc[K], 0, 1);
        } else {
          __builtin_prefetch(Cols + (I + 2 * PfDist) * W, 0, 0);
          const std::int32_t *Pc = Cols + (I + PfDist) * W;
          for (int K = 0; K < 2 * W; ++K)
            __builtin_prefetch(X + Pc[K], 0, 1);
        }
        if constexpr (NarrowVal) {
          __builtin_prefetch(Vals32 + (I + PfDist) * W, 0, 0);
          __builtin_prefetch(Vals32 + (I + PfDist + 1) * W, 0, 0);
        } else {
          __builtin_prefetch(Vals + (I + PfDist) * W, 0, 0);
          __builtin_prefetch(Vals + (I + PfDist + 1) * W, 0, 0);
        }
      }
    }

    // Column-index double pumping: one 16-wide load per two steps (int32
    // direct, or uint16 widened + rebased onto the band).
    if ((I & 1) == 0) {
      if constexpr (NarrowIdx)
        Cols16 = simd::VecI16::loadU16Widen(ColsN + I * W, ColBase);
      else
        Cols16 = simd::VecI16::loadAligned(Cols + I * W);
    }
    simd::VecI8 Idx = (I & 1) ? Cols16.hi() : Cols16.lo();

    simd::VecD8 Xs = simd::VecD8::gather(X, Idx);
    simd::VecD8 Vs = NarrowVal ? simd::VecD8::loadF32Widen(Vals32 + I * W)
                               : simd::VecD8::loadAligned(Vals + I * W);
    VOut = VOut.fmadd(Vs, Xs);
  }

  // Trailing records (pieces that finish exactly at the stream end).
  if (RecIdx < RecEnd)
    applyRecords<Accumulate>(VOut, Recs, RecIdx, RecEnd,
                             std::numeric_limits<std::int64_t>::max(), Y,
                             TResult);

  // Tail flush: t_result slots back to their rows (Algorithm 4 l.31-33).
  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    writeBack<Accumulate>(Y, Row, TResult[K], Shared);
  }
}

/// Generic any-width kernel (lane-count ablation / non-AVX hosts).
/// Accumulate, the prefetch distance, and the stream kinds are runtime
/// parameters here: this path is not performance-critical. The compressed
/// streams decode per element — scalar widening of uint16 deltas (plus
/// the chunk's band base) and fp32 values, with fp64 accumulation.
void runChunkGeneric(const CvrMatrix &M, const CvrChunk &C, const double *X,
                     double *Y, int PfDist, bool Accumulate) {
  const int W = M.lanes();
  const std::int64_t EB = C.ElemBase;
  const std::int32_t Base = M.chunkColBase(
      static_cast<std::size_t>(&C - M.chunks().data()));
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  std::vector<double> TResult(W, 0.0);
  std::vector<double> VOut(W, 0.0);

  auto Store = [&](std::int32_t Row, double V, bool Shared) {
    if (Accumulate)
      writeBack<true>(Y, Row, V, Shared);
    else
      writeBack<false>(Y, Row, V, Shared);
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W) {
      const CvrRecord &R = Recs[RecIdx];
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal)
        TResult[R.Wb] += VOut[Off];
      else
        Store(R.Wb, VOut[Off], R.Shared);
      VOut[Off] = 0.0;
      ++RecIdx;
    }
    if (PfDist > 0 && I + PfDist < C.NumSteps) {
      for (int K = 0; K < W; ++K)
        __builtin_prefetch(X + M.colAt(EB + (I + PfDist) * W + K, Base), 0,
                           1);
    }
    for (int K = 0; K < W; ++K)
      VOut[K] +=
          M.valueAt(EB + I * W + K) * X[M.colAt(EB + I * W + K, Base)];
  }

  for (; RecIdx < RecEnd; ++RecIdx) {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos % W);
    if (R.Steal)
      TResult[R.Wb] += VOut[Off];
    else
      Store(R.Wb, VOut[Off], R.Shared);
    VOut[Off] = 0.0;
  }

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    Store(Row, TResult[K], Shared);
  }
}

/// Fused-path record application. Exclusive feed records apply the epilogue
/// to the lane's finished dot product and store the result; shared feeds
/// accumulate the raw partial atomically (the epilogue for boundary rows
/// runs in cvrSpmvFused's sequential cleanup pass); steal records spill to
/// t_result as usual. Scalar spill instead of the masked-scatter batching:
/// the epilogue is a per-row scalar op anyway, and records are rare
/// relative to steps.
CVR_HOT inline simd::VecD8 applyRecordsFused(simd::VecD8 VOut,
                                             const CvrRecord *Recs,
                                     std::int64_t &RecIdx,
                                     std::int64_t RecEnd, std::int64_t Limit,
                                     double *Y, double *TResult,
                                     const FusedEpilogue &E, const double *X,
                                     EpilogueAccum &Acc) {
  alignas(64) double Buf[8];
  VOut.toArray(Buf);
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 7);
    if (R.Steal) {
      TResult[R.Wb] += Buf[Off];
    } else if (R.Shared) {
#pragma omp atomic
      Y[R.Wb] += Buf[Off];
    } else {
      Y[R.Wb] = fusedRowApply(E, X, R.Wb, Buf[Off], Acc);
    }
    Buf[Off] = 0.0;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  return simd::VecD8::fromArray(Buf);
}

/// Fused twin of runChunkAvx (no accumulate mode: blocked matrices compose
/// instead). The streaming loop is identical; only the finalize sites
/// differ. NarrowIdx/NarrowVal mirror runChunkAvx's compressed-stream
/// loads.
template <int PfDist, bool NarrowIdx, bool NarrowVal>
CVR_HOT void runChunkAvxFused(const CvrMatrix &M, const CvrChunk &C,
                              const double *X,
                      double *Y, const FusedEpilogue &E, EpilogueAccum &Acc,
                      std::int32_t ColBase) {
  static_assert(PfDist % 2 == 0, "prefetch pairs with the double-pumped "
                                 "column loads, so the distance stays even");
  constexpr int W = 8;
  const double *Vals = NarrowVal ? nullptr : M.vals() + C.ElemBase;
  const float *Vals32 = NarrowVal ? M.vals32() + C.ElemBase : nullptr;
  const std::int32_t *Cols = NarrowIdx ? nullptr : M.colIdx() + C.ElemBase;
  const std::uint16_t *ColsN =
      NarrowIdx ? M.colIdx16() + C.ElemBase : nullptr;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  alignas(64) double TResult[W] = {0};
  simd::VecD8 VOut = simd::VecD8::zero();
  simd::VecI16 Cols16{};

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      VOut = applyRecordsFused(VOut, Recs, RecIdx, RecEnd, (I + 1) * W, Y,
                               TResult, E, X, Acc);

    if constexpr (PfDist > 0) {
      if ((I & 1) == 0 && I + PfDist + 1 < C.NumSteps) {
        if constexpr (NarrowIdx) {
          __builtin_prefetch(ColsN + (I + 2 * PfDist) * W, 0, 0);
          const std::uint16_t *Pc = ColsN + (I + PfDist) * W;
          for (int K = 0; K < 2 * W; ++K)
            __builtin_prefetch(X + ColBase + Pc[K], 0, 1);
        } else {
          __builtin_prefetch(Cols + (I + 2 * PfDist) * W, 0, 0);
          const std::int32_t *Pc = Cols + (I + PfDist) * W;
          for (int K = 0; K < 2 * W; ++K)
            __builtin_prefetch(X + Pc[K], 0, 1);
        }
        if constexpr (NarrowVal) {
          __builtin_prefetch(Vals32 + (I + PfDist) * W, 0, 0);
          __builtin_prefetch(Vals32 + (I + PfDist + 1) * W, 0, 0);
        } else {
          __builtin_prefetch(Vals + (I + PfDist) * W, 0, 0);
          __builtin_prefetch(Vals + (I + PfDist + 1) * W, 0, 0);
        }
      }
    }

    if ((I & 1) == 0) {
      if constexpr (NarrowIdx)
        Cols16 = simd::VecI16::loadU16Widen(ColsN + I * W, ColBase);
      else
        Cols16 = simd::VecI16::loadAligned(Cols + I * W);
    }
    simd::VecI8 Idx = (I & 1) ? Cols16.hi() : Cols16.lo();

    simd::VecD8 Xs = simd::VecD8::gather(X, Idx);
    simd::VecD8 Vs = NarrowVal ? simd::VecD8::loadF32Widen(Vals32 + I * W)
                               : simd::VecD8::loadAligned(Vals + I * W);
    VOut = VOut.fmadd(Vs, Xs);
  }

  if (RecIdx < RecEnd)
    applyRecordsFused(VOut, Recs, RecIdx, RecEnd,
                      std::numeric_limits<std::int64_t>::max(), Y, TResult,
                      E, X, Acc);

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    if (Row == C.FirstRow || Row == C.LastRow) {
#pragma omp atomic
      Y[Row] += TResult[K];
    } else {
      Y[Row] = fusedRowApply(E, X, Row, TResult[K], Acc);
    }
  }
}

/// Fused twin of runChunkGeneric (any lane width, runtime prefetch, and
/// runtime stream-kind decode like runChunkGeneric).
void runChunkGenericFused(const CvrMatrix &M, const CvrChunk &C,
                          const double *X, double *Y, int PfDist,
                          const FusedEpilogue &E, EpilogueAccum &Acc) {
  const int W = M.lanes();
  const std::int64_t EB = C.ElemBase;
  const std::int32_t Base = M.chunkColBase(
      static_cast<std::size_t>(&C - M.chunks().data()));
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  std::vector<double> TResult(W, 0.0);
  std::vector<double> VOut(W, 0.0);

  auto Finish = [&](std::int32_t Row, double V, bool Shared) {
    if (Shared) {
#pragma omp atomic
      Y[Row] += V;
    } else {
      Y[Row] = fusedRowApply(E, X, Row, V, Acc);
    }
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W) {
      const CvrRecord &R = Recs[RecIdx];
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal)
        TResult[R.Wb] += VOut[Off];
      else
        Finish(R.Wb, VOut[Off], R.Shared);
      VOut[Off] = 0.0;
      ++RecIdx;
    }
    if (PfDist > 0 && I + PfDist < C.NumSteps) {
      for (int K = 0; K < W; ++K)
        __builtin_prefetch(X + M.colAt(EB + (I + PfDist) * W + K, Base), 0,
                           1);
    }
    for (int K = 0; K < W; ++K)
      VOut[K] +=
          M.valueAt(EB + I * W + K) * X[M.colAt(EB + I * W + K, Base)];
  }

  for (; RecIdx < RecEnd; ++RecIdx) {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos % W);
    if (R.Steal)
      TResult[R.Wb] += VOut[Off];
    else
      Finish(R.Wb, VOut[Off], R.Shared);
    VOut[Off] = 0.0;
  }

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    Finish(Row, TResult[K], Row == C.FirstRow || Row == C.LastRow);
  }
}

/// Band base of \p C, for the narrow-index kernels (0 otherwise).
std::int32_t chunkBase(const CvrMatrix &M, const CvrChunk &C) {
  return M.chunkColBase(static_cast<std::size_t>(&C - M.chunks().data()));
}

/// Prefetch-distance dispatch for one fused (kind-resolved) instantiation.
template <bool NarrowIdx, bool NarrowVal>
void runChunkAvxFusedPf(const CvrMatrix &M, const CvrChunk &C,
                        const double *X, double *Y, const FusedEpilogue &E,
                        EpilogueAccum &Acc, int PfDist, std::int32_t Base) {
  switch (PfDist) {
  case 2:
    runChunkAvxFused<2, NarrowIdx, NarrowVal>(M, C, X, Y, E, Acc, Base);
    break;
  case 4:
    runChunkAvxFused<4, NarrowIdx, NarrowVal>(M, C, X, Y, E, Acc, Base);
    break;
  case 8:
    runChunkAvxFused<8, NarrowIdx, NarrowVal>(M, C, X, Y, E, Acc, Base);
    break;
  default:
    runChunkAvxFused<0, NarrowIdx, NarrowVal>(M, C, X, Y, E, Acc, Base);
    break;
  }
}

/// Dispatches one chunk of the fused path.
void runChunkFused(const CvrMatrix &M, const CvrChunk &C, const double *X,
                   double *Y, const FusedEpilogue &E, EpilogueAccum &Acc,
                   int PfDist, bool UseAvx) {
  if (!UseAvx) {
    runChunkGenericFused(M, C, X, Y, PfDist, E, Acc);
    return;
  }
  const std::int32_t Base = chunkBase(M, C);
  const bool NI = M.colIndexKind() == ColIndexKind::U16Band;
  const bool NV = M.valueKind() == ValueKind::F32x64;
  if (NI) {
    if (NV)
      runChunkAvxFusedPf<true, true>(M, C, X, Y, E, Acc, PfDist, Base);
    else
      runChunkAvxFusedPf<true, false>(M, C, X, Y, E, Acc, PfDist, Base);
  } else {
    if (NV)
      runChunkAvxFusedPf<false, true>(M, C, X, Y, E, Acc, PfDist, Base);
    else
      runChunkAvxFusedPf<false, false>(M, C, X, Y, E, Acc, PfDist, Base);
  }
}

/// Prefetch-distance dispatch for one unfused (kind-resolved)
/// instantiation.
template <bool Accumulate, bool NarrowIdx, bool NarrowVal>
void runChunkAvxPf(const CvrMatrix &M, const CvrChunk &C, const double *X,
                   double *Y, int PfDist, std::int32_t Base) {
  switch (PfDist) {
  case 2:
    runChunkAvx<2, Accumulate, NarrowIdx, NarrowVal>(M, C, X, Y, Base);
    break;
  case 4:
    runChunkAvx<4, Accumulate, NarrowIdx, NarrowVal>(M, C, X, Y, Base);
    break;
  case 8:
    runChunkAvx<8, Accumulate, NarrowIdx, NarrowVal>(M, C, X, Y, Base);
    break;
  default:
    runChunkAvx<0, Accumulate, NarrowIdx, NarrowVal>(M, C, X, Y, Base);
    break;
  }
}

/// Dispatches one chunk to the right kernel instantiation. The prefetch
/// distance is snapped to the supported set by cvrSpmv.
template <bool Accumulate>
void runChunk(const CvrMatrix &M, const CvrChunk &C, const double *X,
              double *Y, int PfDist, bool UseAvx) {
  if (!UseAvx) {
    runChunkGeneric(M, C, X, Y, PfDist, Accumulate);
    return;
  }
  const std::int32_t Base = chunkBase(M, C);
  const bool NI = M.colIndexKind() == ColIndexKind::U16Band;
  const bool NV = M.valueKind() == ValueKind::F32x64;
  if (NI) {
    if (NV)
      runChunkAvxPf<Accumulate, true, true>(M, C, X, Y, PfDist, Base);
    else
      runChunkAvxPf<Accumulate, true, false>(M, C, X, Y, PfDist, Base);
  } else {
    if (NV)
      runChunkAvxPf<Accumulate, false, true>(M, C, X, Y, PfDist, Base);
    else
      runChunkAvxPf<Accumulate, false, false>(M, C, X, Y, PfDist, Base);
  }
}

/// Runs the chunks [Begin, End) across M.runThreads() threads. With more
/// chunks than threads (over-decomposition) the schedule turns dynamic so
/// a thread that drew a light chunk picks up the next one.
void runChunkRange(const CvrMatrix &M, int Begin, int End, const double *X,
                   double *Y, int PfDist, bool Accumulate) {
  const std::vector<CvrChunk> &Chunks = M.chunks();
  int N = End - Begin;
  int Threads = std::min(M.runThreads(), N);
  bool UseAvx = M.lanes() == simd::DoubleLanes && !M.forcesGenericKernel();

  auto Body = [&](int T) {
    const CvrChunk &C = Chunks[Begin + T];
    if (Accumulate)
      runChunk<true>(M, C, X, Y, PfDist, UseAvx);
    else
      runChunk<false>(M, C, X, Y, PfDist, UseAvx);
  };
  if (N > Threads)
    ompParallelForDynamic(N, Threads, Body);
  else
    ompParallelFor(N, Threads, Body);
}

} // namespace

int snapPrefetchDistance(int D) {
  if (D <= 0)
    return 0;
  if (D <= 2)
    return 2;
  if (D <= 4)
    return 4;
  return 8;
}

namespace {

/// Per-run execution counters, derived from the chunk table rather than
/// the SIMD loops: the step count (and with it the number of gathered x
/// elements) is fixed by the structure, so one O(chunks) sweep per call
/// observes what the hot loops did without touching them.
void recordCvrRunTelemetry(const CvrMatrix &M, bool Fused, bool CountRun) {
  if (!obs::telemetryEnabled())
    return;
  static obs::Counter &Runs = obs::counter("spmv.cvr.runs");
  static obs::Counter &Steps = obs::counter("spmv.cvr.steps");
  static obs::Counter &Gathers = obs::counter("spmv.cvr.gathered_elems");
  static obs::Counter &FusedRuns = obs::counter("spmv.cvr.fused_runs");
  static obs::Counter &FusedRows =
      obs::counter("spmv.cvr.fused_epilogue_rows");
  if (CountRun) {
    std::int64_t TotalSteps = 0;
    for (const CvrChunk &C : M.chunks())
      TotalSteps += C.NumSteps;
    Runs.inc();
    Steps.add(TotalSteps);
    Gathers.add(TotalSteps * M.lanes());
  }
  if (Fused) {
    FusedRuns.inc();
    FusedRows.add(M.numRows());
  }
}

} // namespace

void cvrSpmv(const CvrMatrix &M, const double *X, double *Y,
             int PrefetchDistance) {
  obs::TraceSpan Span("execute/spmv", "execute");
  recordCvrRunTelemetry(M, /*Fused=*/false, /*CountRun=*/true);
  int PfDist = snapPrefetchDistance(PrefetchDistance);

  if (M.isBlocked()) {
    // Accumulate mode: clear all of y once, then add each band's partial
    // products. Bands run sequentially so x's working set stays one band
    // wide; chunks within a band run in parallel.
    std::memset(Y, 0, sizeof(double) * static_cast<std::size_t>(M.numRows()));
    for (const CvrBand &B : M.bands())
      runChunkRange(M, B.ChunkBegin, B.ChunkEnd, X, Y, PfDist,
                    /*Accumulate=*/true);
    return;
  }

  // Pre-zero the rows that accumulate (boundary rows) or are never written
  // (empty rows); all other rows receive exactly one plain store.
  for (std::int32_t R : M.zeroRows())
    Y[R] = 0.0;
  runChunkRange(M, 0, M.numChunks(), X, Y, PfDist, /*Accumulate=*/false);
}

void cvrSpmvFused(const CvrMatrix &M, const double *X, double *Y,
                  FusedEpilogue &E, int PrefetchDistance) {
  if (E.Op == EpilogueOp::None) {
    cvrSpmv(M, X, Y, PrefetchDistance);
    E.Acc1 = E.Acc2 = E.Acc3 = 0.0;
    return;
  }
  if (M.isBlocked()) {
    // Accumulate mode finishes no row until the last band; compose.
    obs::TraceSpan Span("execute/fused-epilogue", "execute");
    recordCvrRunTelemetry(M, /*Fused=*/true, /*CountRun=*/false);
    cvrSpmv(M, X, Y, PrefetchDistance);
    applyEpilogueScalar(E, X, Y, M.numRows());
    return;
  }
  assert((!E.WantXDotY || M.numRows() == M.numCols()) &&
         "x.y fusion gathers the run input at output rows; needs square A");

  obs::TraceSpan Span("execute/fused-epilogue", "execute");
  recordCvrRunTelemetry(M, /*Fused=*/true, /*CountRun=*/true);
  int PfDist = snapPrefetchDistance(PrefetchDistance);
  // Boundary rows accumulate raw partials during the chunk sweep; the
  // cleanup pass below applies the epilogue to them (and to empty rows)
  // exactly once. zeroRows is precisely that set.
  for (std::int32_t R : M.zeroRows())
    Y[R] = 0.0;

  const std::vector<CvrChunk> &Chunks = M.chunks();
  int N = static_cast<int>(Chunks.size());
  int Threads = std::min(M.runThreads(), N);
  bool UseAvx = M.lanes() == simd::DoubleLanes && !M.forcesGenericKernel();

  // Per-chunk partial accumulators, merged in chunk index order below so
  // the reduction is deterministic however the chunks were scheduled.
  // Stack storage keeps solver iterations allocation-free; matrices split
  // into more chunks than the cap (heavy over-decomposition) spill to the
  // heap once per call.
  constexpr int MaxStackChunks = 512;
  EpilogueAccum StackAccs[MaxStackChunks];
  std::vector<EpilogueAccum> HeapAccs;
  EpilogueAccum *Accs = StackAccs;
  if (N > MaxStackChunks) {
    HeapAccs.resize(static_cast<std::size_t>(N));
    Accs = HeapAccs.data();
  }

  auto Body = [&](int T) {
    Accs[T] = EpilogueAccum{};
    runChunkFused(M, Chunks[T], X, Y, E, Accs[T], PfDist, UseAvx);
  };
  if (N > Threads)
    ompParallelForDynamic(N, Threads, Body);
  else
    ompParallelFor(N, Threads, Body);

  EpilogueAccum Total;
  for (int T = 0; T < N; ++T)
    mergeAccum(E, Total, Accs[T]);

  // Sequential cleanup: boundary + empty rows, in zero-row (ascending)
  // order, merged last.
  EpilogueAccum Cleanup;
  for (std::int32_t R : M.zeroRows())
    Y[R] = fusedRowApply(E, X, R, Y[R], Cleanup);
  mergeAccum(E, Total, Cleanup);
  storeAccum(E, Total);
}

CvrKernel::CvrKernel(CvrOptions Opts) : Opts(Opts) {}

void CvrKernel::prepare(const CsrMatrix &A) {
  M = CvrMatrix::fromCsr(A, Opts);
}

Status CvrKernel::prepareStatus(const CsrMatrix &A) {
  StatusOr<CvrMatrix> R = CvrMatrix::tryFromCsr(A, Opts);
  if (!R.ok())
    return R.status().withContext("CVR prepare");
  M = std::move(*R);
  return Status::okStatus();
}

void CvrKernel::run(const double *X, double *Y) const {
  cvrSpmv(M, X, Y, Opts.PrefetchDistance);
}

void CvrKernel::runFused(const double *X, double *Y,
                         FusedEpilogue &E) const {
  cvrSpmvFused(M, X, Y, E, Opts.PrefetchDistance);
}

std::size_t CvrKernel::formatBytes() const { return M.formatBytes(); }

bool CvrKernel::traceRun(MemAccessSink &Sink, const double *X,
                         double *Y) const {
  const int W = M.lanes();
  const bool Accumulate = M.isBlocked();
  if (Accumulate) {
    // The blocked kernel clears all of y before the bands accumulate.
    for (std::int32_t R = 0; R < M.numRows(); ++R) {
      Sink.write(Y + R, sizeof(double));
      Y[R] = 0.0;
    }
  } else {
    for (std::int32_t R : M.zeroRows()) {
      Sink.write(Y + R, sizeof(double));
      Y[R] = 0.0;
    }
  }

  // Stream element widths by kind: the compressed streams read 2-byte
  // index deltas / 4-byte fp32 values, which is exactly the traffic
  // reduction the roofline model predicts.
  const std::size_t IdxB = M.indexBytes();
  const std::size_t ValB = M.valueBytes();
  std::vector<double> TResult(W), VOut(W);
  for (const CvrChunk &C : M.chunks()) {
    std::fill(TResult.begin(), TResult.end(), 0.0);
    std::fill(VOut.begin(), VOut.end(), 0.0);
    const std::int64_t EB = C.ElemBase;
    const std::int32_t Base = M.chunkColBase(
        static_cast<std::size_t>(&C - M.chunks().data()));
    const char *ColsP =
        M.colIndexKind() == ColIndexKind::U16Band
            ? reinterpret_cast<const char *>(M.colIdx16() + EB)
            : reinterpret_cast<const char *>(M.colIdx() + EB);
    const char *ValsP =
        M.valueKind() == ValueKind::F32x64
            ? reinterpret_cast<const char *>(M.vals32() + EB)
            : reinterpret_cast<const char *>(M.vals() + EB);
    std::int64_t RecIdx = C.RecBase;

    auto Flush = [&](std::int32_t Row, double V, bool Shared) {
      bool ReadsY = Shared || Accumulate;
      if (ReadsY)
        Sink.read(Y + Row, sizeof(double));
      Sink.write(Y + Row, sizeof(double));
      if (ReadsY)
        Y[Row] += V;
      else
        Y[Row] = V;
    };

    auto ApplyRec = [&](const CvrRecord &R) {
      Sink.read(&R, sizeof(CvrRecord));
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal)
        TResult[R.Wb] += VOut[Off]; // t_result lives in registers/stack.
      else
        Flush(R.Wb, VOut[Off], R.Shared);
      VOut[Off] = 0.0;
    };

    for (std::int64_t I = 0; I < C.NumSteps; ++I) {
      while (RecIdx < C.RecEnd && M.recs()[RecIdx].Pos < (I + 1) * W)
        ApplyRec(M.recs()[RecIdx++]);
      // Column indices are double-pumped at width 8: one load of 16
      // indices per two steps (the step count is padded even, so both
      // steps exist).
      if (W == 8) {
        if ((I & 1) == 0)
          Sink.read(ColsP + I * W * IdxB, 16 * IdxB);
      } else {
        Sink.read(ColsP + I * W * IdxB, W * IdxB);
      }
      Sink.read(ValsP + I * W * ValB, W * ValB);
      for (int K = 0; K < W; ++K) {
        std::int32_t Col = M.colAt(EB + I * W + K, Base);
        Sink.read(X + Col, sizeof(double));
        VOut[K] += M.valueAt(EB + I * W + K) * X[Col];
      }
    }
    while (RecIdx < C.RecEnd)
      ApplyRec(M.recs()[RecIdx++]);

    const std::int32_t *Tails = M.tails() + C.TailBase;
    for (int K = 0; K < W; ++K) {
      Sink.read(Tails + K, sizeof(std::int32_t));
      std::int32_t Row = Tails[K];
      if (Row < 0)
        continue;
      bool Shared = Row == C.FirstRow || Row == C.LastRow;
      Flush(Row, TResult[K], Shared);
    }
  }
  return true;
}

bool CvrKernel::traceRunFused(MemAccessSink &Sink, const double *X,
                              double *Y, FusedEpilogue &E) const {
  if (E.Op == EpilogueOp::None) {
    E.Acc1 = E.Acc2 = E.Acc3 = 0.0;
    return traceRun(Sink, X, Y);
  }
  if (M.isBlocked()) {
    // Matches runFused's composed path for blocked matrices.
    if (!traceRun(Sink, X, Y))
      return false;
    traceEpilogueScalar(Sink, E, X, Y, M.numRows());
    return true;
  }

  const int W = M.lanes();
  for (std::int32_t R : M.zeroRows()) {
    Sink.write(Y + R, sizeof(double));
    Y[R] = 0.0;
  }

  // Serial sweep in chunk order; per-chunk accumulators merged in the same
  // order cvrSpmvFused uses, so the traced accumulators match runFused bit
  // for bit.
  const std::size_t IdxB = M.indexBytes();
  const std::size_t ValB = M.valueBytes();
  EpilogueAccum Total;
  std::vector<double> TResult(W), VOut(W);
  for (const CvrChunk &C : M.chunks()) {
    EpilogueAccum Acc;
    std::fill(TResult.begin(), TResult.end(), 0.0);
    std::fill(VOut.begin(), VOut.end(), 0.0);
    const std::int64_t EB = C.ElemBase;
    const std::int32_t Base = M.chunkColBase(
        static_cast<std::size_t>(&C - M.chunks().data()));
    const char *ColsP =
        M.colIndexKind() == ColIndexKind::U16Band
            ? reinterpret_cast<const char *>(M.colIdx16() + EB)
            : reinterpret_cast<const char *>(M.colIdx() + EB);
    const char *ValsP =
        M.valueKind() == ValueKind::F32x64
            ? reinterpret_cast<const char *>(M.vals32() + EB)
            : reinterpret_cast<const char *>(M.vals() + EB);
    std::int64_t RecIdx = C.RecBase;

    // Exclusive rows take the epilogue on the register-resident value: one
    // y store plus the operand traffic. Boundary rows accumulate raw
    // partials (read-modify-write) and are finished by the cleanup pass.
    auto Flush = [&](std::int32_t Row, double V, bool Shared) {
      if (Shared) {
        Sink.read(Y + Row, sizeof(double));
        Sink.write(Y + Row, sizeof(double));
        Y[Row] += V;
      } else {
        traceFusedRowOperands(Sink, E, X, Row);
        Sink.write(Y + Row, sizeof(double));
        Y[Row] = fusedRowApply(E, X, Row, V, Acc);
      }
    };

    auto ApplyRec = [&](const CvrRecord &R) {
      Sink.read(&R, sizeof(CvrRecord));
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal)
        TResult[R.Wb] += VOut[Off];
      else
        Flush(R.Wb, VOut[Off], R.Shared != 0);
      VOut[Off] = 0.0;
    };

    for (std::int64_t I = 0; I < C.NumSteps; ++I) {
      while (RecIdx < C.RecEnd && M.recs()[RecIdx].Pos < (I + 1) * W)
        ApplyRec(M.recs()[RecIdx++]);
      if (W == 8) {
        if ((I & 1) == 0)
          Sink.read(ColsP + I * W * IdxB, 16 * IdxB);
      } else {
        Sink.read(ColsP + I * W * IdxB, W * IdxB);
      }
      Sink.read(ValsP + I * W * ValB, W * ValB);
      for (int K = 0; K < W; ++K) {
        std::int32_t Col = M.colAt(EB + I * W + K, Base);
        Sink.read(X + Col, sizeof(double));
        VOut[K] += M.valueAt(EB + I * W + K) * X[Col];
      }
    }
    while (RecIdx < C.RecEnd)
      ApplyRec(M.recs()[RecIdx++]);

    const std::int32_t *Tails = M.tails() + C.TailBase;
    for (int K = 0; K < W; ++K) {
      Sink.read(Tails + K, sizeof(std::int32_t));
      std::int32_t Row = Tails[K];
      if (Row < 0)
        continue;
      Flush(Row, TResult[K], Row == C.FirstRow || Row == C.LastRow);
    }
    mergeAccum(E, Total, Acc);
  }

  // Cleanup pass: the boundary/empty rows genuinely re-read y (their raw
  // partials left the registers when the chunks finished).
  EpilogueAccum Cleanup;
  for (std::int32_t R : M.zeroRows()) {
    Sink.read(Y + R, sizeof(double));
    traceFusedRowOperands(Sink, E, X, R);
    Sink.write(Y + R, sizeof(double));
    Y[R] = fusedRowApply(E, X, R, Y[R], Cleanup);
  }
  mergeAccum(E, Total, Cleanup);
  storeAccum(E, Total);
  return true;
}

} // namespace cvr
