//===- core/CvrSpmv.cpp - SpMV over the CVR format ------------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/CvrSpmv.h"

#include "simd/Simd.h"
#include "support/ParallelFor.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cvr {

namespace {

/// Scatters a finished lane value to y (feed records and tail flushes).
/// Chunk-boundary rows are accumulated atomically because the neighbouring
/// chunk contributes to them too; every other row has exactly one writer,
/// so a plain store suffices (y's zero rows are pre-cleared).
inline void writeBack(double *Y, std::int32_t Row, double V, bool Shared) {
  if (Shared) {
#pragma omp atomic
    Y[Row] += V;
  } else {
    Y[Row] = V;
  }
}

/// Applies every record with Pos < Limit: feed records scatter the lane's
/// finished dot product straight into y (one masked scatter for the common
/// exclusive-row case), steal records accumulate into the chunk's t_result
/// slots, and the applied lanes are zeroed. Returns the updated v_out.
inline simd::VecD8 applyRecords(simd::VecD8 VOut, const CvrRecord *Recs,
                                std::int64_t &RecIdx, std::int64_t RecEnd,
                                std::int64_t Limit, double *Y,
                                double *TResult) {
#if CVR_SIMD_AVX512
  alignas(32) std::int32_t WbBuf[8];
  __mmask8 FeedMask = 0, ClearMask = 0;
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 7);
    auto Bit = static_cast<__mmask8>(1U << Off);
    if (!R.Steal && !R.Shared) {
      WbBuf[Off] = R.Wb;
      FeedMask |= Bit;
    } else {
      // Single-lane extraction via a masked horizontal add.
      double V = _mm512_mask_reduce_add_pd(Bit, VOut.Reg);
      if (R.Steal) {
        TResult[R.Wb] += V;
      } else {
#pragma omp atomic
        Y[R.Wb] += V;
      }
    }
    ClearMask |= Bit;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  if (FeedMask) {
    __m256i Idx =
        _mm256_load_si256(reinterpret_cast<const __m256i *>(WbBuf));
    _mm512_mask_i32scatter_pd(Y, FeedMask, Idx, VOut.Reg, 8);
  }
  VOut.Reg = _mm512_maskz_mov_pd(static_cast<__mmask8>(~ClearMask),
                                 VOut.Reg);
  return VOut;
#else
  alignas(64) double Buf[8];
  VOut.toArray(Buf);
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 7);
    if (R.Steal)
      TResult[R.Wb] += Buf[Off];
    else
      writeBack(Y, R.Wb, Buf[Off], R.Shared);
    Buf[Off] = 0.0;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  return simd::VecD8::fromArray(Buf);
#endif
}

/// One chunk of the vectorized 8-lane kernel (Algorithm 4).
void runChunkAvx(const CvrMatrix &M, const CvrChunk &C, const double *X,
                 double *Y) {
  constexpr int W = 8;
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  alignas(64) double TResult[W] = {0};
  simd::VecD8 VOut = simd::VecD8::zero();
  simd::VecI16 Cols16{};

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    // Write-back records that fall into this step (the lane's dot product
    // is complete just before the step's elements are consumed).
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      VOut = applyRecords(VOut, Recs, RecIdx, RecEnd, (I + 1) * W, Y,
                          TResult);

    // Column-index double pumping: one 16-wide int32 load per two steps.
    if ((I & 1) == 0)
      Cols16 = simd::VecI16::loadAligned(Cols + I * W);
    simd::VecI8 Idx = (I & 1) ? Cols16.hi() : Cols16.lo();

    simd::VecD8 Xs = simd::VecD8::gather(X, Idx);
    simd::VecD8 Vs = simd::VecD8::loadAligned(Vals + I * W);
    VOut = VOut.fmadd(Vs, Xs);
  }

  // Trailing records (pieces that finish exactly at the stream end).
  if (RecIdx < RecEnd)
    applyRecords(VOut, Recs, RecIdx, RecEnd,
                 std::numeric_limits<std::int64_t>::max(), Y, TResult);

  // Tail flush: t_result slots back to their rows (Algorithm 4 l.31-33).
  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    writeBack(Y, Row, TResult[K], Shared);
  }
}

/// Generic any-width kernel (lane-count ablation / non-AVX hosts).
void runChunkGeneric(const CvrMatrix &M, const CvrChunk &C, const double *X,
                     double *Y) {
  const int W = M.lanes();
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  std::vector<double> TResult(W, 0.0);
  std::vector<double> VOut(W, 0.0);

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W) {
      const CvrRecord &R = Recs[RecIdx];
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal)
        TResult[R.Wb] += VOut[Off];
      else
        writeBack(Y, R.Wb, VOut[Off], R.Shared);
      VOut[Off] = 0.0;
      ++RecIdx;
    }
    for (int K = 0; K < W; ++K)
      VOut[K] += Vals[I * W + K] * X[Cols[I * W + K]];
  }

  for (; RecIdx < RecEnd; ++RecIdx) {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos % W);
    if (R.Steal)
      TResult[R.Wb] += VOut[Off];
    else
      writeBack(Y, R.Wb, VOut[Off], R.Shared);
    VOut[Off] = 0.0;
  }

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    writeBack(Y, Row, TResult[K], Shared);
  }
}

/// One chunk of the multi-vector kernel: a block of B <= 4 right-hand
/// sides shares each step's index and value loads. Structure mirrors
/// runChunkAvx with per-vector accumulators.
void runChunkMulti(const CvrMatrix &M, const CvrChunk &C, const double *X,
                   std::size_t LdX, double *Y, std::size_t LdY, int B) {
  constexpr int W = 8;
  constexpr int MaxB = 4;
  assert(B >= 1 && B <= MaxB && "block of at most four vectors");
  const double *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  alignas(64) double TResult[MaxB][W] = {};
  simd::VecD8 VOut[MaxB];
  for (int V = 0; V < MaxB; ++V)
    VOut[V] = simd::VecD8::zero();
  simd::VecI16 Cols16{};

  // Applies all records with Pos < Limit against every vector's
  // accumulator (one spill per vector; records are rare relative to steps).
  auto Apply = [&](std::int64_t Limit) {
    std::int64_t Begin = RecIdx;
    for (int V = 0; V < B; ++V) {
      alignas(64) double Buf[W];
      VOut[V].toArray(Buf);
      double *Yv = Y + static_cast<std::size_t>(V) * LdY;
      for (std::int64_t R = Begin;
           R < RecEnd && Recs[R].Pos < Limit; ++R) {
        const CvrRecord &Rec = Recs[R];
        int Off = static_cast<int>(Rec.Pos & (W - 1));
        if (Rec.Steal)
          TResult[V][Rec.Wb] += Buf[Off];
        else
          writeBack(Yv, Rec.Wb, Buf[Off], Rec.Shared);
        Buf[Off] = 0.0;
      }
      VOut[V] = simd::VecD8::fromArray(Buf);
    }
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit)
      ++RecIdx;
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      Apply((I + 1) * W);
    if ((I & 1) == 0)
      Cols16 = simd::VecI16::loadAligned(Cols + I * W);
    simd::VecI8 Idx = (I & 1) ? Cols16.hi() : Cols16.lo();
    simd::VecD8 Vs = simd::VecD8::loadAligned(Vals + I * W);
    for (int V = 0; V < B; ++V) {
      simd::VecD8 Xs =
          simd::VecD8::gather(X + static_cast<std::size_t>(V) * LdX, Idx);
      VOut[V] = VOut[V].fmadd(Vs, Xs);
    }
  }
  if (RecIdx < RecEnd)
    Apply(std::numeric_limits<std::int64_t>::max());

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int V = 0; V < B; ++V) {
    double *Yv = Y + static_cast<std::size_t>(V) * LdY;
    for (int K = 0; K < W; ++K) {
      std::int32_t Row = Tails[K];
      if (Row < 0)
        continue;
      bool Shared = Row == C.FirstRow || Row == C.LastRow;
      writeBack(Yv, Row, TResult[V][K], Shared);
    }
  }
}

} // namespace

void cvrSpmm(const CvrMatrix &M, const double *X, std::size_t LdX,
             double *Y, std::size_t LdY, int NumVectors) {
  assert(LdX >= static_cast<std::size_t>(M.numCols()) &&
         LdY >= static_cast<std::size_t>(M.numRows()) &&
         "leading dimensions must cover the matrix shape");
  if (M.lanes() != simd::DoubleLanes || M.forcesGenericKernel()) {
    for (int V = 0; V < NumVectors; ++V)
      cvrSpmv(M, X + static_cast<std::size_t>(V) * LdX,
              Y + static_cast<std::size_t>(V) * LdY);
    return;
  }

  for (int V0 = 0; V0 < NumVectors; V0 += 4) {
    int B = std::min(4, NumVectors - V0);
    const double *XB = X + static_cast<std::size_t>(V0) * LdX;
    double *YB = Y + static_cast<std::size_t>(V0) * LdY;
    for (int V = 0; V < B; ++V)
      for (std::int32_t R : M.zeroRows())
        YB[static_cast<std::size_t>(V) * LdY + R] = 0.0;

    const std::vector<CvrChunk> &Chunks = M.chunks();
    int NumChunks = static_cast<int>(Chunks.size());
    ompParallelFor(NumChunks, NumChunks, [&](int T) {
      runChunkMulti(M, Chunks[T], XB, LdX, YB, LdY, B);
    });
  }
}

void cvrSpmv(const CvrMatrix &M, const double *X, double *Y) {
  // Pre-zero the rows that accumulate (boundary rows) or are never written
  // (empty rows); all other rows receive exactly one plain store.
  for (std::int32_t R : M.zeroRows())
    Y[R] = 0.0;

  const std::vector<CvrChunk> &Chunks = M.chunks();
  int NumChunks = static_cast<int>(Chunks.size());
  bool UseAvx = M.lanes() == simd::DoubleLanes && !M.forcesGenericKernel();

  ompParallelFor(NumChunks, NumChunks, [&](int T) {
    if (UseAvx)
      runChunkAvx(M, Chunks[T], X, Y);
    else
      runChunkGeneric(M, Chunks[T], X, Y);
  });
}

CvrKernel::CvrKernel(CvrOptions Opts) : Opts(Opts) {}

void CvrKernel::prepare(const CsrMatrix &A) {
  M = CvrMatrix::fromCsr(A, Opts);
}

void CvrKernel::run(const double *X, double *Y) const { cvrSpmv(M, X, Y); }

std::size_t CvrKernel::formatBytes() const { return M.formatBytes(); }

bool CvrKernel::traceRun(MemAccessSink &Sink, const double *X,
                         double *Y) const {
  const int W = M.lanes();
  for (std::int32_t R : M.zeroRows()) {
    Sink.write(Y + R, sizeof(double));
    Y[R] = 0.0;
  }

  std::vector<double> TResult(W), VOut(W);
  for (const CvrChunk &C : M.chunks()) {
    std::fill(TResult.begin(), TResult.end(), 0.0);
    std::fill(VOut.begin(), VOut.end(), 0.0);
    const double *Vals = M.vals() + C.ElemBase;
    const std::int32_t *Cols = M.colIdx() + C.ElemBase;
    std::int64_t RecIdx = C.RecBase;

    auto ApplyRec = [&](const CvrRecord &R) {
      Sink.read(&R, sizeof(CvrRecord));
      int Off = static_cast<int>(R.Pos % W);
      if (R.Steal) {
        TResult[R.Wb] += VOut[Off]; // t_result lives in registers/stack.
      } else {
        if (R.Shared)
          Sink.read(Y + R.Wb, sizeof(double));
        Sink.write(Y + R.Wb, sizeof(double));
        if (R.Shared)
          Y[R.Wb] += VOut[Off];
        else
          Y[R.Wb] = VOut[Off];
      }
      VOut[Off] = 0.0;
    };

    for (std::int64_t I = 0; I < C.NumSteps; ++I) {
      while (RecIdx < C.RecEnd && M.recs()[RecIdx].Pos < (I + 1) * W)
        ApplyRec(M.recs()[RecIdx++]);
      // Column indices are double-pumped at width 8: one 64 B load per two
      // steps (the step count is padded even, so both steps exist).
      if (W == 8) {
        if ((I & 1) == 0)
          Sink.read(Cols + I * W, 16 * sizeof(std::int32_t));
      } else {
        Sink.read(Cols + I * W, W * sizeof(std::int32_t));
      }
      Sink.read(Vals + I * W, W * sizeof(double));
      for (int K = 0; K < W; ++K) {
        Sink.read(X + Cols[I * W + K], sizeof(double));
        VOut[K] += Vals[I * W + K] * X[Cols[I * W + K]];
      }
    }
    while (RecIdx < C.RecEnd)
      ApplyRec(M.recs()[RecIdx++]);

    const std::int32_t *Tails = M.tails() + C.TailBase;
    for (int K = 0; K < W; ++K) {
      Sink.read(Tails + K, sizeof(std::int32_t));
      std::int32_t Row = Tails[K];
      if (Row < 0)
        continue;
      bool Shared = Row == C.FirstRow || Row == C.LastRow;
      if (Shared)
        Sink.read(Y + Row, sizeof(double));
      Sink.write(Y + Row, sizeof(double));
      if (Shared)
        Y[Row] += TResult[K];
      else
        Y[Row] = TResult[K];
    }
  }
  return true;
}

} // namespace cvr
