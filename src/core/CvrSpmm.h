//===- core/CvrSpmm.h - Batched multi-RHS SpMM over CVR ---------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-blocked SpMM on the CVR stream: Y = A * X for a panel of
/// NumVectors right-hand sides. Panels are row-major — element (i, j) of X
/// lives at X[i * LdX + j] with LdX >= NumVectors — so each CVR column
/// index fetches NumVectors *contiguous* x values. That single layout
/// decision deletes the paper's gather bottleneck for the batched case:
/// where SpMV issues one 8-way gather per step, SpMM issues eight plain
/// (unaligned) vector loads, and the matrix's value/index/chunk streams —
/// the dominant term of a bandwidth-bound kernel's bytes/nnz — are read
/// once per register block of columns instead of once per vector.
///
/// The kernel streams the matrix floor(K / RhsBlock) (+1 for a remainder)
/// times, each pass covering RhsBlock columns in register accumulators:
/// 8-wide (VecD8), 4-wide (VecD4), or a masked tail of any width 1..7, so a
/// degenerate K never wastes a full-width pass. Lane semantics (records,
/// tracker stealing, tails, shared-row atomics, accumulate-mode bands) are
/// identical to the SpMV kernel with every scalar write-back widened to a
/// panel row.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVRSPMM_H
#define CVR_CORE_CVRSPMM_H

#include "core/CvrFormat.h"
#include "formats/BatchEpilogue.h"
#include "support/Status.h"

namespace cvr {

/// Execution knobs for one SpMM call.
struct CvrSpmmOptions {
  /// Columns per matrix pass (the register-block width). Supported widths
  /// are {4, 8}; other values snap via snapRhsBlock. Narrower blocks halve
  /// the register pressure per pass at the cost of streaming the matrix
  /// twice as often — the autotuner's RhsBlock axis decides per matrix.
  int RhsBlock = 8;

  /// Software-prefetch distance in stream steps for the X panel rows (and
  /// the vals stream); snapped to {0, 2, 4, 8} like the SpMV kernel.
  int PrefetchDistance = 0;
};

/// Snaps a requested register-block width to the supported set {4, 8}
/// (<= 0 selects the default 8).
int snapRhsBlock(int B);

/// Computes Y = A * X for \p NumVectors right-hand sides stored row-major
/// (element (i, j) at X[i * LdX + j]; LdX, LdY >= NumVectors; X has
/// numCols rows, Y numRows rows and is overwritten). Rejects invalid panel
/// arguments — null pointers, NumVectors < 1, leading dimensions narrower
/// than the panel — with INVALID_ARGUMENT instead of reading out of
/// bounds. Works for every lane width and for column-blocked matrices (the
/// generic and accumulate-mode fallbacks keep the exact SpMV semantics).
[[nodiscard]] Status cvrSpmm(const CvrMatrix &M, const double *X,
                             std::size_t LdX, double *Y, std::size_t LdY,
                             int NumVectors,
                             const CvrSpmmOptions &Opts = {});

/// Fused SpMM: computes Y = A * X and applies the per-column epilogue \p E
/// at each row's finalize point while the row's K values are still in
/// registers (see BatchEpilogue.h for the op catalog; E.NumVectors must
/// equal \p NumVectors). Exclusive rows take the epilogue inside the
/// parallel chunk sweep; chunk-boundary and empty rows are finished by a
/// sequential cleanup pass in zero-row order, merged last, so accumulators
/// reduce deterministically per matrix configuration. Column-blocked
/// matrices and generic-lane matrices compose cvrSpmm with the scalar
/// batch-epilogue sweep instead.
[[nodiscard]] Status cvrSpmmFused(const CvrMatrix &M, const double *X,
                                  std::size_t LdX, double *Y, std::size_t LdY,
                                  int NumVectors, FusedBatchEpilogue &E,
                                  const CvrSpmmOptions &Opts = {});

} // namespace cvr

#endif // CVR_CORE_CVRSPMM_H
