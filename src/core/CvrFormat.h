//===- core/CvrFormat.h - The CVR representation ----------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Compressed Vectorization-oriented sparse Row (CVR) format — the
/// paper's contribution (Section 4). A sparse matrix is converted into a
/// dense `steps x lanes` element stream per thread chunk:
///
///  * the nonzeros are divided evenly into one chunk per thread
///    (`nnz_start`/`nnz_end`, Section 4.2);
///  * inside a chunk, `lanes` trackers `(rowID, valID, count)` stream rows
///    into SIMD lanes: when a lane's row is exhausted the next non-empty
///    row is *fed* into it, and when no rows remain the lane *steals* the
///    head of the fullest lane's remaining elements;
///  * each finish event appends a record `(pos, wb)` telling the SpMV
///    kernel where the lane's accumulated dot product must be written:
///    feed-phase records scatter straight into y, steal-phase records
///    accumulate into the per-chunk `t_result` slots that the `tail` array
///    maps back to rows (Figure 3, Algorithm 3).
///
/// The conversion is a single O(nnz) streaming pass — the source of CVR's
/// headline low preprocessing overhead (Tables 1/4).
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVRFORMAT_H
#define CVR_CORE_CVRFORMAT_H

#include "matrix/Csr.h"
#include "support/AlignedBuffer.h"
#include "support/Status.h"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cvr {

namespace analysis {
struct Introspect;
} // namespace analysis

/// Storage precision of the value stream. SpMV is bandwidth-bound, so the
/// stream bytes — not the FLOPs — set the speed limit (the roofline model
/// in src/analysis/Roofline.h quantifies this); F32x64 halves the dominant
/// stream at the cost of fp32 rounding of the matrix entries, which the
/// solvers' iterative-refinement fallback recovers from.
enum class ValueKind : std::uint8_t {
  F64 = 0,    ///< fp64 storage, fp64 accumulation (the paper's layout).
  F32x64 = 1, ///< fp32 storage widened to fp64 accumulation in registers.
};

/// Storage width of the column-index stream.
enum class ColIndexKind : std::uint8_t {
  U32 = 0, ///< Absolute int32 columns (the paper's layout).
  /// Band-local uint16 deltas from the owning column band's ColBegin
  /// (band 0 / unblocked matrices use base 0). Requires every band to
  /// span <= 65536 columns; conversion falls back to U32 otherwise
  /// (CvrMatrix::narrowIndexFallback reports it). Pad slots store delta
  /// 0, so a pad's widened column is the band base — always a safe
  /// gather; its value is 0, so it contributes nothing.
  U16Band = 1,
};

/// Conversion options.
struct CvrOptions {
  /// SIMD lanes (the paper's omega): 8 for f64 on AVX-512. Any value >= 1
  /// is accepted; the vectorized kernel requires 8, other widths run
  /// through the generic kernel (used by the lane-count ablation).
  int Lanes = 8;

  /// Number of thread chunks (<= 0 selects the OpenMP default).
  int NumThreads = 0;

  /// Tracker stealing for tail balance (Section 4.2 "Tracker Stealing").
  /// Disabling it pads idle lanes instead — the stealing ablation.
  bool EnableStealing = true;

  /// Run the scalar kernel even when the AVX-512 one is applicable — the
  /// vectorization-benefit ablation.
  bool ForceGenericKernel = false;

  /// Feed rows longest-first instead of in matrix order — the sort-first
  /// ablation (quantifies what the paper's O(nnz) no-sort design saves).
  bool SortFeedRows = false;

  /// Chunks per thread (over-decomposition). 1 reproduces the paper's one
  /// chunk per thread; larger values trade extra boundary rows for dynamic
  /// load balance on skewed matrices. The kernel derives its thread count
  /// back from the structure (chunks per band / multiplier).
  int ChunkMultiplier = 1;

  /// x-vector cache blocking: when > 0, the element stream is split into
  /// column bands of about this many bytes of x (ColBlockBytes / 8
  /// columns) so the gather working set fits a target cache level. 0
  /// disables blocking. Blocked matrices run in accumulate mode: y is
  /// zeroed once and every band adds its partial products.
  std::int64_t ColBlockBytes = 0;

  /// Software-prefetch distance in stream steps for the x gather targets
  /// (and the vals/colIdx streams). An execution-time knob: it selects a
  /// kernel variant, not a different conversion. Supported distances are
  /// {0, 2, 4, 8}; other values snap up to the next supported one.
  int PrefetchDistance = 0;

  /// SpMM register-block width: panel columns per matrix pass for
  /// runBatch (core/CvrSpmm.h). An execution-time knob like
  /// PrefetchDistance; supported widths are {4, 8}, other values snap.
  int RhsBlock = 8;

  /// Value-stream storage precision (stream compression axis 1). F32x64
  /// halves value-stream traffic; results carry fp32 rounding of the
  /// matrix entries (~1e-7 relative), which solvers recover from via
  /// iterative refinement against an fp64 reference operator.
  ValueKind Values = ValueKind::F64;

  /// Column-index storage width (stream compression axis 2). U16Band is
  /// lossless; it silently falls back to U32 when any column band is
  /// wider than 65536 columns (see CvrMatrix::narrowIndexFallback).
  ColIndexKind Indices = ColIndexKind::U32;
};

/// One write-back record (the paper's `rec` vector entry).
struct CvrRecord {
  std::int64_t Pos;  ///< Element position within the chunk stream.
  std::int32_t Wb;   ///< Feed: destination row. Steal: t_result slot.
  std::uint8_t Steal;  ///< 1 for steal-phase records.
  std::uint8_t Shared; ///< 1 if the destination row needs atomic adds.
};

/// One column band of a blocked conversion: the chunks in
/// [ChunkBegin, ChunkEnd) hold exactly the nonzeros whose column lies in
/// [ColBegin, ColEnd). Bands run sequentially (chunks within a band in
/// parallel) and accumulate into y.
struct CvrBand {
  std::int32_t ColBegin = 0;
  std::int32_t ColEnd = 0;
  std::int32_t ChunkBegin = 0;
  std::int32_t ChunkEnd = 0;
};

/// Per-thread-chunk metadata.
struct CvrChunk {
  std::int64_t ElemBase = 0;  ///< Offset into Vals/ColIdx (elements).
  std::int64_t NumSteps = 0;  ///< Stream steps (each emits Lanes elements).
  std::int64_t RecBase = 0;   ///< Offset into Recs.
  std::int64_t RecEnd = 0;    ///< One past the chunk's last record.
  std::int64_t TailBase = 0;  ///< Offset into Tails (Lanes slots).
  std::int32_t FirstRow = -1; ///< First row touched (possibly partial).
  std::int32_t LastRow = -1;  ///< Last row touched (possibly partial).
};

/// On-disk arrangement of a serialized CVR blob.
enum class BlobLayout {
  /// Version-3 stream layout: sections packed back to back. Smallest
  /// files; loading always copies.
  Compact,
  /// Version-4 mapped layout: identical sections, but each payload is
  /// padded to start at a 64-byte-aligned file offset, so a mmap'd blob
  /// can be executed in place — the value/column-index streams keep the
  /// alignment the AVX-512 kernels load with. The pad bytes must be zero
  /// and every payload keeps its CRC32C, so the adversarial guarantees of
  /// v3 carry over bit for bit.
  Mapped,
};

/// A matrix converted to CVR.
class CvrMatrix {
public:
  /// Converts \p A. The conversion runs the chunks in parallel and is the
  /// operation the preprocessing benchmarks time. Terminates on allocation
  /// failure; production callers that must survive OOM or pathological
  /// inputs use tryFromCsr.
  static CvrMatrix fromCsr(const CsrMatrix &A, const CvrOptions &Opts = {});

  /// Recoverable conversion: INVALID_ARGUMENT for unusable options,
  /// RESOURCE_EXHAUSTED when stream storage cannot be allocated, INTERNAL
  /// when the converted structure fails its own invariants. The
  /// degradation ladder in formats/Registry falls back to CSR on any
  /// non-OK outcome.
  [[nodiscard]] static StatusOr<CvrMatrix> tryFromCsr(const CsrMatrix &A,
                                        const CvrOptions &Opts = {});

  std::int32_t numRows() const { return NumRows; }
  std::int32_t numCols() const { return NumCols; }
  std::int64_t numNonZeros() const { return Nnz; }
  int lanes() const { return Lanes; }
  int numChunks() const { return static_cast<int>(Chunks.size()); }

  const std::vector<CvrChunk> &chunks() const { return Chunks; }
  const double *vals() const { return Vals.data(); }
  const std::int32_t *colIdx() const { return ColIdx.data(); }
  const CvrRecord *recs() const { return Recs.data(); }
  const std::int32_t *tails() const { return Tails.data(); }

  /// Stream compression state. Exactly one value stream and one index
  /// stream is populated: vals() xor vals32(), colIdx() xor colIdx16().
  ValueKind valueKind() const { return VKind; }
  ColIndexKind colIndexKind() const { return IKind; }
  const float *vals32() const { return Vals32.data(); }
  const std::uint16_t *colIdx16() const { return ColIdx16.data(); }

  /// True when U16Band indices were requested but a band exceeded the
  /// uint16 range, so the conversion kept 32-bit indices (the checked
  /// fallback the narrow-index axis documents).
  bool narrowIndexFallback() const { return NarrowIdxFallback; }

  /// Bytes per stored element of the value / column-index streams.
  std::size_t valueBytes() const {
    return VKind == ValueKind::F32x64 ? sizeof(float) : sizeof(double);
  }
  std::size_t indexBytes() const {
    return IKind == ColIndexKind::U16Band ? sizeof(std::uint16_t)
                                          : sizeof(std::int32_t);
  }

  /// Column-band base the chunk's narrow indices are deltas from (0 for
  /// U32 matrices and for unblocked ones). Derived from Bands — never
  /// serialized — and rebuilt on conversion and on blob load.
  std::int32_t chunkColBase(std::size_t ChunkIdx) const {
    return ChunkIdx < ChunkColBase.size() ? ChunkColBase[ChunkIdx] : 0;
  }

  /// Kind-independent element decode for the cold paths (validation,
  /// tracing, shadow kernels). \p Base is the owning chunk's
  /// chunkColBase().
  double valueAt(std::int64_t I) const {
    return VKind == ValueKind::F32x64 ? static_cast<double>(Vals32[I])
                                      : Vals[I];
  }
  std::int32_t colAt(std::int64_t I, std::int32_t Base) const {
    return IKind == ColIndexKind::U16Band
               ? Base + static_cast<std::int32_t>(ColIdx16[I])
               : ColIdx[I];
  }
  /// The raw stored index (band-local delta for U16Band). Pad slots are
  /// raw 0 with value 0 under either kind.
  std::int32_t rawColAt(std::int64_t I) const {
    return IKind == ColIndexKind::U16Band
               ? static_cast<std::int32_t>(ColIdx16[I])
               : ColIdx[I];
  }

  /// Rows the kernel must zero before accumulation: empty rows plus every
  /// chunk-boundary row (see CvrSpmv). Empty for blocked matrices, whose
  /// kernel zeroes all of y instead.
  const std::vector<std::int32_t> &zeroRows() const { return ZeroRows; }

  /// Column bands of a blocked conversion; empty when unblocked (the
  /// common case: one implicit band covering every column and chunk).
  const std::vector<CvrBand> &bands() const { return Bands; }
  bool isBlocked() const { return !Bands.empty(); }

  /// Chunks each thread owns (the over-decomposition factor used at
  /// conversion time; >= 1).
  int chunkMultiplier() const { return ChunkMult; }

  /// Threads the kernel should run with, derived from the structure:
  /// chunks per band divided by the multiplier. Serialized blobs therefore
  /// keep their intended parallelism.
  int runThreads() const;

  /// True when the conversion requested the scalar kernel (ablation).
  bool forcesGenericKernel() const { return ForceGeneric; }

  std::size_t formatBytes() const;

  /// Internal invariants (every nonzero emitted exactly once, records
  /// ordered by position, tails consistent); used by tests and asserts.
  bool isValid() const;

  /// Writes the converted matrix as a versioned little-endian binary blob
  /// (current version 3: per-section CRC32C integrity), so one conversion
  /// can be amortized across process runs. Returns false on stream
  /// failure.
  bool writeBinary(std::ostream &OS) const;

  /// Reads a blob written by writeBinary (any version >= 1). On failure
  /// returns false and leaves \p M empty; validates header magic, version,
  /// section checksums (v3), bounds, and invariants.
  static bool readBinary(std::istream &IS, CvrMatrix &M);

  /// Status-reporting writer: UNAVAILABLE on stream failure (including an
  /// armed `serialize.write.short` fail point). Writes format v3
  /// (BlobLayout::Compact, the default) or the mmap-executable v4
  /// (BlobLayout::Mapped).
  [[nodiscard]] Status writeBlob(std::ostream &OS,
                                 BlobLayout Layout = BlobLayout::Compact) const;

  /// Status-reporting reader with full diagnostics. Messages carry a
  /// stable bracketed rule id ("[cvr.blob.section-crc] ..."), the same ids
  /// analysis::InvariantChecker::checkBlob reports. DATA_LOSS for corrupt
  /// or truncated bytes, OUT_OF_RANGE for counts that fail the strict
  /// bounds validation, RESOURCE_EXHAUSTED when a validated section does
  /// not fit in memory.
  [[nodiscard]] static StatusOr<CvrMatrix> readBlob(std::istream &IS);

  /// Zero-copy decode of a Mapped (v4) blob held in memory — typically a
  /// PROT_READ mmap of a blob file. The value, column-index, and tail
  /// streams of the returned matrix alias [Data, Data + Bytes) directly
  /// (no copy; the mapping must outlive the matrix and stay readable);
  /// the small metadata tables are copied. Every validation readBlob
  /// performs runs first, against the mapped bytes: magic, version,
  /// header/section CRC32C, strict count bounds, pad-zero checks, and the
  /// full structural invariants — no pointer is trusted before it passes.
  /// FAILED_PRECONDITION when the blob is a non-mappable version (1-3) or
  /// \p Data is not 64-byte aligned; callers fall back to readBlob, which
  /// copies.
  [[nodiscard]] static StatusOr<CvrMatrix> mapBlob(const void *Data,
                                                   std::size_t Bytes);

  /// True when every stream is heap-owned (false for mapBlob views).
  bool ownsStreams() const {
    return Vals.ownsStorage() && ColIdx.ownsStorage() &&
           Vals32.ownsStorage() && ColIdx16.ownsStorage() &&
           Tails.ownsStorage();
  }

  /// Deserializer plumbing: pointers to the private fields, handed to the
  /// version-specific body readers in CvrSerialize.cpp. Not for general
  /// use.
  struct BlobFields {
    std::int32_t *NumRows;
    std::int32_t *NumCols;
    std::int64_t *Nnz;
    int *Lanes;
    int *ChunkMult;
    bool *ForceGeneric;
    ValueKind *VKind;
    ColIndexKind *IKind;
    AlignedBuffer<double> *Vals;
    AlignedBuffer<std::int32_t> *ColIdx;
    AlignedBuffer<float> *Vals32;
    AlignedBuffer<std::uint16_t> *ColIdx16;
    std::vector<CvrRecord> *Recs;
    AlignedBuffer<std::int32_t> *Tails;
    std::vector<CvrChunk> *Chunks;
    std::vector<std::int32_t> *ZeroRows;
    std::vector<CvrBand> *Bands;
  };

private:
  friend class CvrConverter;
  /// Structural views + mutation access for src/analysis (invariant
  /// checker and its mutation tests).
  friend struct analysis::Introspect;

  std::int32_t NumRows = 0;
  std::int32_t NumCols = 0;
  std::int64_t Nnz = 0;
  int Lanes = 8;

  /// Applies the CvrOptions compression axes to a freshly converted (or
  /// about-to-be-validated) structure: narrows ColIdx into ColIdx16 when
  /// every band fits uint16 (recording the fallback otherwise) and Vals
  /// into Vals32 on request, then rebuilds the derived per-chunk column
  /// bases. RESOURCE_EXHAUSTED when the narrow streams cannot be
  /// allocated.
  [[nodiscard]] Status compressStreams(ValueKind VK, ColIndexKind IK);

  /// Recomputes ChunkColBase from Bands (called after conversion and
  /// after every successful blob decode).
  void rebuildChunkColBases();

  AlignedBuffer<double> Vals;        ///< cvr_vals (F64), chunk-concatenated.
  AlignedBuffer<std::int32_t> ColIdx; ///< cvr_colidx (U32).
  AlignedBuffer<float> Vals32;       ///< cvr_vals (F32x64); Vals empty.
  AlignedBuffer<std::uint16_t> ColIdx16; ///< cvr_colidx (U16Band deltas).
  std::vector<CvrRecord> Recs;
  AlignedBuffer<std::int32_t> Tails; ///< Lanes per chunk; -1 = unused slot.
  std::vector<CvrChunk> Chunks;
  std::vector<std::int32_t> ZeroRows;
  std::vector<CvrBand> Bands; ///< Empty = unblocked.
  std::vector<std::int32_t> ChunkColBase; ///< Derived: per-chunk band base.
  int ChunkMult = 1;
  bool ForceGeneric = false;
  ValueKind VKind = ValueKind::F64;
  ColIndexKind IKind = ColIndexKind::U32;
  bool NarrowIdxFallback = false; ///< U16Band requested but band too wide.
};

} // namespace cvr

#endif // CVR_CORE_CVRFORMAT_H
