//===- core/CvrSerialize.cpp - CVR binary save/load -----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Blob layout (little-endian, no padding surprises: every field is written
// explicitly): magic "CVRF", u32 version, the scalar header fields, then
// each array prefixed with its u64 element count.
//
//===----------------------------------------------------------------------===//

#include "core/CvrFormat.h"

#include <istream>
#include <ostream>

namespace cvr {

namespace {

constexpr char Magic[4] = {'C', 'V', 'R', 'F'};
/// Version 2 appends the execution-engine fields: the chunk multiplier and
/// the column-band table. Version-1 blobs load with both defaulted
/// (multiplier 1, unblocked).
constexpr std::uint32_t Version = 2;

template <typename T> void writePod(std::ostream &OS, const T &V) {
  OS.write(reinterpret_cast<const char *>(&V), sizeof(T));
}

template <typename T> bool readPod(std::istream &IS, T &V) {
  IS.read(reinterpret_cast<char *>(&V), sizeof(T));
  return static_cast<bool>(IS);
}

template <typename T>
void writeArray(std::ostream &OS, const T *Data, std::uint64_t N) {
  writePod(OS, N);
  if (N != 0)
    OS.write(reinterpret_cast<const char *>(Data),
             static_cast<std::streamsize>(N * sizeof(T)));
}

/// Reads an array written by writeArray into any resizable container with
/// data()/resize(). A cap guards against corrupted counts allocating
/// unbounded memory.
template <typename Container>
bool readArray(std::istream &IS, Container &Out, std::uint64_t MaxElems) {
  std::uint64_t N = 0;
  if (!readPod(IS, N) || N > MaxElems)
    return false;
  Out.resize(static_cast<std::size_t>(N));
  if (N != 0)
    IS.read(reinterpret_cast<char *>(Out.data()),
            static_cast<std::streamsize>(N * sizeof(*Out.data())));
  return static_cast<bool>(IS);
}

/// Arbitrary sanity cap: no array in a CVR blob is larger than this many
/// elements (1 << 40 elements would be terabytes).
constexpr std::uint64_t MaxArrayElems = 1ULL << 40;

} // namespace

bool CvrMatrix::writeBinary(std::ostream &OS) const {
  OS.write(Magic, sizeof(Magic));
  writePod(OS, Version);
  writePod(OS, NumRows);
  writePod(OS, NumCols);
  writePod(OS, Nnz);
  writePod(OS, static_cast<std::int32_t>(Lanes));
  writePod(OS, static_cast<std::uint8_t>(ForceGeneric));

  writeArray(OS, Vals.data(), Vals.size());
  writeArray(OS, ColIdx.data(), ColIdx.size());
  writeArray(OS, Recs.data(), Recs.size());
  writeArray(OS, Tails.data(), Tails.size());
  writeArray(OS, Chunks.data(), Chunks.size());
  writeArray(OS, ZeroRows.data(), ZeroRows.size());
  writePod(OS, static_cast<std::int32_t>(ChunkMult));
  writeArray(OS, Bands.data(), Bands.size());
  return static_cast<bool>(OS);
}

bool CvrMatrix::readBinary(std::istream &IS, CvrMatrix &M) {
  M = CvrMatrix();
  char Head[4];
  IS.read(Head, sizeof(Head));
  if (!IS || Head[0] != Magic[0] || Head[1] != Magic[1] ||
      Head[2] != Magic[2] || Head[3] != Magic[3])
    return false;
  std::uint32_t V = 0;
  if (!readPod(IS, V) || V < 1 || V > Version)
    return false;

  std::int32_t Lanes32 = 0;
  std::uint8_t Generic = 0;
  if (!readPod(IS, M.NumRows) || !readPod(IS, M.NumCols) ||
      !readPod(IS, M.Nnz) || !readPod(IS, Lanes32) ||
      !readPod(IS, Generic))
    return false;
  if (M.NumRows < 0 || M.NumCols < 0 || M.Nnz < 0 || Lanes32 < 1)
    return false;
  M.Lanes = Lanes32;
  M.ForceGeneric = Generic != 0;

  if (!readArray(IS, M.Vals, MaxArrayElems) ||
      !readArray(IS, M.ColIdx, MaxArrayElems) ||
      !readArray(IS, M.Recs, MaxArrayElems) ||
      !readArray(IS, M.Tails, MaxArrayElems) ||
      !readArray(IS, M.Chunks, MaxArrayElems) ||
      !readArray(IS, M.ZeroRows, MaxArrayElems))
    return false;
  if (V >= 2) {
    std::int32_t Mult = 0;
    if (!readPod(IS, Mult) || Mult < 1 ||
        !readArray(IS, M.Bands, MaxArrayElems))
      return false;
    M.ChunkMult = Mult;
  }

  if (M.Vals.size() != M.ColIdx.size())
    return false;
  if (M.Tails.size() !=
      M.Chunks.size() * static_cast<std::size_t>(M.Lanes))
    return false;
  // Chunk offsets must stay inside the arrays before isValid() (or the
  // kernel) dereferences through them.
  auto Elems = static_cast<std::int64_t>(M.Vals.size());
  auto NumRecs = static_cast<std::int64_t>(M.Recs.size());
  for (const CvrChunk &C : M.Chunks) {
    if (C.ElemBase < 0 || C.NumSteps < 0 ||
        C.ElemBase + C.NumSteps * M.Lanes > Elems)
      return false;
    if (C.RecBase < 0 || C.RecBase > C.RecEnd || C.RecEnd > NumRecs)
      return false;
    if (C.TailBase < 0 ||
        C.TailBase + M.Lanes >
            static_cast<std::int64_t>(M.Tails.size()))
      return false;
    if (C.FirstRow >= M.NumRows || C.LastRow >= M.NumRows)
      return false;
  }
  for (std::int32_t R : M.ZeroRows)
    if (R < 0 || R >= M.NumRows)
      return false;
  if (!M.isValid()) {
    M = CvrMatrix();
    return false;
  }
  return true;
}

} // namespace cvr
