//===- core/CvrSerialize.cpp - CVR binary save/load -----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Version-3 blob layout (little-endian, every field written explicitly):
//
//   magic "CVRF" | u32 version
//   header: NumRows i32, NumCols i32, Nnz i64, Lanes i32,
//           ForceGeneric u8, ChunkMult i32 | u32 crc32c(header bytes)
//   sections, in order: Chunks, Bands, ZeroRows, Recs, Tails, Vals, ColIdx
//   each section: u64 count | payload | u32 crc32c(payload)
//
// The section order is deliberate: the chunk table arrives first, so every
// later count has a strict structural bound before its allocation happens
// (Tails == Chunks * Lanes exactly, Vals/ColIdx == sum of NumSteps * Lanes
// exactly, Bands <= Chunks, ZeroRows <= NumRows). A corrupt or hostile
// count is rejected with OUT_OF_RANGE instead of commissioning memory.
//
// Reader diagnostics carry a stable bracketed rule id — e.g.
// "[cvr.blob.section-crc] ..." — which analysis::InvariantChecker::checkBlob
// maps back onto its dotted rule namespace. The ids are part of the
// interface; tests match on them.
//
// Versions 1 and 2 (no checksums, arrays before the chunk table) remain
// readable; v1 defaults the execution-engine fields (multiplier 1,
// unblocked).
//
//===----------------------------------------------------------------------===//

#include "core/CvrFormat.h"

#include "support/Crc32c.h"
#include "support/FailPoint.h"

#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <string>

namespace cvr {

namespace {

constexpr char Magic[4] = {'C', 'V', 'R', 'F'};
constexpr std::uint32_t Version = 3;

/// Structural ceilings for header-declared quantities. They bound what the
/// v3 reader will commission before the cheap exact checks take over; all
/// are far beyond any matrix the project handles.
constexpr std::uint64_t MaxChunks = 1ULL << 22;
constexpr std::uint64_t MaxLanes = 4096;
constexpr std::uint64_t MaxChunkMult = 1ULL << 20;
constexpr std::uint64_t MaxStreamElems = 1ULL << 40;

/// Legacy (v1/v2) cap: those blobs carry array counts before the chunk
/// table, so only this generic ceiling applies.
constexpr std::uint64_t MaxLegacyArrayElems = 1ULL << 40;

bool writeBytes(std::ostream &OS, const void *P, std::size_t N) {
  if (CVR_FAIL_POINT("serialize.write.short"))
    return false;
  OS.write(static_cast<const char *>(P), static_cast<std::streamsize>(N));
  return static_cast<bool>(OS);
}

bool readBytes(std::istream &IS, void *P, std::size_t N) {
  if (CVR_FAIL_POINT("serialize.read.short"))
    return false;
  IS.read(static_cast<char *>(P), static_cast<std::streamsize>(N));
  return static_cast<bool>(IS);
}

template <typename T> bool readPod(std::istream &IS, T &V) {
  return readBytes(IS, &V, sizeof(T));
}

/// Appends a POD field to the header image being checksummed.
template <typename T> void packField(std::string &Buf, const T &V) {
  Buf.append(reinterpret_cast<const char *>(&V), sizeof(T));
}

[[nodiscard]] Status truncated(const char *Where) {
  return Status::dataLoss(std::string("[cvr.blob.truncated] blob ends inside ") +
                          Where);
}

/// Allocation shims so one section reader serves both container kinds.
template <typename T>
[[nodiscard]] Status resizeContainer(AlignedBuffer<T> &C, std::size_t N) {
  return C.tryResize(N);
}

template <typename T>
[[nodiscard]] Status resizeContainer(std::vector<T> &C, std::size_t N) {
  try {
    C.resize(N);
  } catch (const std::bad_alloc &) {
    return Status::resourceExhausted("section allocation of " +
                                     std::to_string(N) + " elements failed");
  }
  return Status::okStatus();
}

/// Writes one v3 section: u64 count, payload, payload CRC.
template <typename T>
bool writeSection(std::ostream &OS, const T *Data, std::uint64_t N) {
  if (!writeBytes(OS, &N, sizeof(N)))
    return false;
  std::size_t Bytes = static_cast<std::size_t>(N) * sizeof(T);
  if (N != 0 && !writeBytes(OS, Data, Bytes))
    return false;
  std::uint32_t Crc = crc32c(N != 0 ? Data : nullptr, Bytes);
  return writeBytes(OS, &Crc, sizeof(Crc));
}

/// Reads one v3 section into \p Out. The count must satisfy the structural
/// bound \p MaxElems (and equal \p ExactElems when >= 0) BEFORE any
/// allocation happens; the payload must match its recorded CRC32C.
template <typename Container>
[[nodiscard]] Status readSection(std::istream &IS, Container &Out,
                                const char *Name,
                   std::uint64_t MaxElems, std::int64_t ExactElems = -1) {
  std::uint64_t N = 0;
  if (!readPod(IS, N))
    return truncated((std::string("the ") + Name + " section count").c_str());
  if (ExactElems >= 0 && N != static_cast<std::uint64_t>(ExactElems))
    return Status::outOfRange(
        std::string("[cvr.blob.bounds] ") + Name + " count " +
        std::to_string(N) + " does not match the structural requirement of " +
        std::to_string(ExactElems));
  if (N > MaxElems)
    return Status::outOfRange(std::string("[cvr.blob.bounds] ") + Name +
                              " count " + std::to_string(N) +
                              " exceeds the structural bound " +
                              std::to_string(MaxElems));

  Status S = resizeContainer(Out, static_cast<std::size_t>(N));
  if (!S.ok())
    return S.withContext(Name);
  std::size_t Bytes = static_cast<std::size_t>(N) * sizeof(*Out.data());
  if (N != 0) {
    if (!readBytes(IS, Out.data(), Bytes))
      return truncated((std::string("the ") + Name + " payload").c_str());
    CVR_FAIL_POINT_CORRUPT("serialize.read.bitflip", Out.data(), Bytes);
  }
  std::uint32_t Want = 0;
  if (!readPod(IS, Want))
    return truncated((std::string("the ") + Name + " checksum").c_str());
  std::uint32_t Got = crc32c(N != 0 ? Out.data() : nullptr, Bytes);
  if (Got != Want)
    return Status::dataLoss(std::string("[cvr.blob.section-crc] ") + Name +
                            " payload fails its CRC32C (stored " +
                            std::to_string(Want) + ", computed " +
                            std::to_string(Got) + ")");
  return Status::okStatus();
}

/// Legacy (v1/v2) array: u64 count then payload, no checksum.
template <typename Container>
[[nodiscard]] Status readLegacyArray(std::istream &IS, Container &Out,
                                     const char *Name) {
  std::uint64_t N = 0;
  if (!readPod(IS, N))
    return truncated((std::string("the ") + Name + " section count").c_str());
  if (N > MaxLegacyArrayElems)
    return Status::outOfRange(std::string("[cvr.blob.bounds] ") + Name +
                              " count " + std::to_string(N) +
                              " exceeds the legacy array ceiling");
  Status S = resizeContainer(Out, static_cast<std::size_t>(N));
  if (!S.ok())
    return S.withContext(Name);
  if (N != 0 &&
      !readBytes(IS, Out.data(),
                 static_cast<std::size_t>(N) * sizeof(*Out.data())))
    return truncated((std::string("the ") + Name + " payload").c_str());
  return Status::okStatus();
}

} // namespace

Status CvrMatrix::writeBlob(std::ostream &OS) const {
  if (!writeBytes(OS, Magic, sizeof(Magic)))
    return Status::unavailable("blob write failed at the magic");
  std::uint32_t V = Version;
  if (!writeBytes(OS, &V, sizeof(V)))
    return Status::unavailable("blob write failed at the version");

  std::string Header;
  Header.reserve(32);
  packField(Header, NumRows);
  packField(Header, NumCols);
  packField(Header, Nnz);
  packField(Header, static_cast<std::int32_t>(Lanes));
  packField(Header, static_cast<std::uint8_t>(ForceGeneric));
  packField(Header, static_cast<std::int32_t>(ChunkMult));
  std::uint32_t HeaderCrc = crc32c(Header.data(), Header.size());
  if (!writeBytes(OS, Header.data(), Header.size()) ||
      !writeBytes(OS, &HeaderCrc, sizeof(HeaderCrc)))
    return Status::unavailable("blob write failed in the header");

  if (!writeSection(OS, Chunks.data(), Chunks.size()) ||
      !writeSection(OS, Bands.data(), Bands.size()) ||
      !writeSection(OS, ZeroRows.data(), ZeroRows.size()) ||
      !writeSection(OS, Recs.data(), Recs.size()) ||
      !writeSection(OS, Tails.data(), Tails.size()) ||
      !writeSection(OS, Vals.data(), Vals.size()) ||
      !writeSection(OS, ColIdx.data(), ColIdx.size()))
    return Status::unavailable(
        "blob write failed mid-section (disk full or short write?)");
  OS.flush();
  if (!OS)
    return Status::unavailable("blob flush failed");
  return Status::okStatus();
}

namespace {

/// Everything after the version word of a v3 blob.
[[nodiscard]] Status readV3Body(std::istream &IS, CvrMatrix::BlobFields F) {
  // Header image: reread as one block so the CRC covers exactly the bytes
  // the writer checksummed.
  char Header[4 + 4 + 8 + 4 + 1 + 4];
  if (!readBytes(IS, Header, sizeof(Header)))
    return truncated("the header");
  std::uint32_t WantCrc = 0;
  if (!readPod(IS, WantCrc))
    return truncated("the header checksum");
  if (crc32c(Header, sizeof(Header)) != WantCrc)
    return Status::dataLoss("[cvr.blob.header-crc] header fails its CRC32C");

  std::int32_t Lanes32 = 0, Mult = 0;
  std::uint8_t Generic = 0;
  const char *P = Header;
  std::memcpy(F.NumRows, P, 4), P += 4;
  std::memcpy(F.NumCols, P, 4), P += 4;
  std::memcpy(F.Nnz, P, 8), P += 8;
  std::memcpy(&Lanes32, P, 4), P += 4;
  std::memcpy(&Generic, P, 1), P += 1;
  std::memcpy(&Mult, P, 4);

  if (*F.NumRows < 0 || *F.NumCols < 0 || *F.Nnz < 0)
    return Status::outOfRange(
        "[cvr.blob.bounds] header declares a negative shape");
  if (Lanes32 < 1 || static_cast<std::uint64_t>(Lanes32) > MaxLanes)
    return Status::outOfRange("[cvr.blob.bounds] lane count " +
                              std::to_string(Lanes32) +
                              " is outside [1, " + std::to_string(MaxLanes) +
                              "]");
  if (Mult < 1 || static_cast<std::uint64_t>(Mult) > MaxChunkMult)
    return Status::outOfRange("[cvr.blob.bounds] chunk multiplier " +
                              std::to_string(Mult) + " is outside [1, " +
                              std::to_string(MaxChunkMult) + "]");
  *F.Lanes = Lanes32;
  *F.ForceGeneric = Generic != 0;
  *F.ChunkMult = Mult;

  // Chunk table first: it induces the exact bounds for everything after.
  Status S = readSection(IS, *F.Chunks, "chunk table", MaxChunks);
  if (!S.ok())
    return S;
  std::uint64_t TotalElems = 0;
  for (const CvrChunk &C : *F.Chunks) {
    if (C.NumSteps < 0 ||
        static_cast<std::uint64_t>(C.NumSteps) > MaxStreamElems / Lanes32)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk declares an unrepresentable step count " +
          std::to_string(C.NumSteps));
    TotalElems += static_cast<std::uint64_t>(C.NumSteps) * Lanes32;
    if (TotalElems > MaxStreamElems)
      return Status::outOfRange(
          "[cvr.blob.bounds] total stream length exceeds the structural "
          "ceiling");
  }
  std::uint64_t NumChunks = F.Chunks->size();
  // Records: one per row finish plus at most Lanes steal events per chunk;
  // chunk-boundary rows finish twice. Anything past this bound cannot have
  // come from the converter.
  std::uint64_t MaxRecs = static_cast<std::uint64_t>(*F.Nnz) +
                          static_cast<std::uint64_t>(*F.NumRows) +
                          NumChunks * (static_cast<std::uint64_t>(Lanes32) + 2);

  if (!(S = readSection(IS, *F.Bands, "band table", NumChunks)).ok())
    return S;
  if (!(S = readSection(IS, *F.ZeroRows, "zero-row list",
                        static_cast<std::uint64_t>(*F.NumRows)))
           .ok())
    return S;
  if (!(S = readSection(IS, *F.Recs, "record stream", MaxRecs)).ok())
    return S;
  if (!(S = readSection(IS, *F.Tails, "tail table", MaxStreamElems,
                        static_cast<std::int64_t>(NumChunks * Lanes32)))
           .ok())
    return S;
  if (!(S = readSection(IS, *F.Vals, "value stream", MaxStreamElems,
                        static_cast<std::int64_t>(TotalElems)))
           .ok())
    return S;
  if (!(S = readSection(IS, *F.ColIdx, "column-index stream", MaxStreamElems,
                        static_cast<std::int64_t>(TotalElems)))
           .ok())
    return S;
  return Status::okStatus();
}

/// Everything after the version word of a v1/v2 blob (arrays precede the
/// execution-engine fields; no checksums, so only generic bounds apply).
[[nodiscard]] Status readLegacyBody(std::istream &IS, std::uint32_t V,
                      CvrMatrix::BlobFields F) {
  std::int32_t Lanes32 = 0;
  std::uint8_t Generic = 0;
  if (!readPod(IS, *F.NumRows) || !readPod(IS, *F.NumCols) ||
      !readPod(IS, *F.Nnz) || !readPod(IS, Lanes32) || !readPod(IS, Generic))
    return truncated("the header");
  if (*F.NumRows < 0 || *F.NumCols < 0 || *F.Nnz < 0 || Lanes32 < 1 ||
      static_cast<std::uint64_t>(Lanes32) > MaxLanes)
    return Status::outOfRange(
        "[cvr.blob.bounds] legacy header declares an invalid shape or lane "
        "count");
  *F.Lanes = Lanes32;
  *F.ForceGeneric = Generic != 0;

  Status S;
  if (!(S = readLegacyArray(IS, *F.Vals, "value stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.ColIdx, "column-index stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Recs, "record stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Tails, "tail table")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Chunks, "chunk table")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.ZeroRows, "zero-row list")).ok())
    return S;
  if (V >= 2) {
    std::int32_t Mult = 0;
    if (!readPod(IS, Mult))
      return truncated("the chunk multiplier");
    if (Mult < 1 || static_cast<std::uint64_t>(Mult) > MaxChunkMult)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk multiplier " + std::to_string(Mult) +
          " is outside [1, " + std::to_string(MaxChunkMult) + "]");
    *F.ChunkMult = Mult;
    if (!(S = readLegacyArray(IS, *F.Bands, "band table")).ok())
      return S;
  }
  return Status::okStatus();
}

} // namespace

StatusOr<CvrMatrix> CvrMatrix::readBlob(std::istream &IS) {
  char Head[4];
  if (!readBytes(IS, Head, sizeof(Head)))
    return truncated("the magic");
  if (std::memcmp(Head, Magic, sizeof(Magic)) != 0)
    return Status::dataLoss(
        "[cvr.blob.magic] input does not start with the CVRF magic");
  std::uint32_t V = 0;
  if (!readPod(IS, V))
    return truncated("the version");
  if (V < 1 || V > Version)
    return Status::invalidArgument(
        "[cvr.blob.version] unsupported blob version " + std::to_string(V) +
        " (this build reads versions 1.." + std::to_string(Version) + ")");

  CvrMatrix M;
  BlobFields F{&M.NumRows, &M.NumCols,  &M.Nnz,    &M.Lanes,
               &M.ChunkMult, &M.ForceGeneric, &M.Vals,   &M.ColIdx,
               &M.Recs,    &M.Tails,    &M.Chunks, &M.ZeroRows,
               &M.Bands};
  Status S = V >= 3 ? readV3Body(IS, F) : readLegacyBody(IS, V, F);
  if (!S.ok())
    return S;

  // Structural cross-checks: every offset a kernel dereferences through
  // must land inside its array before isValid() (which indexes freely)
  // runs. The v3 exact counts make most of these redundant; v1/v2 blobs
  // rely on them entirely.
  if (M.Vals.size() != M.ColIdx.size())
    return Status::outOfRange(
        "[cvr.blob.bounds] value and column-index streams disagree in "
        "length");
  if (M.Tails.size() != M.Chunks.size() * static_cast<std::size_t>(M.Lanes))
    return Status::outOfRange(
        "[cvr.blob.bounds] tail table length does not equal chunks * lanes");
  auto Elems = static_cast<std::int64_t>(M.Vals.size());
  auto NumRecs = static_cast<std::int64_t>(M.Recs.size());
  for (const CvrChunk &C : M.Chunks) {
    if (C.ElemBase < 0 || C.NumSteps < 0 || C.NumSteps > Elems / M.Lanes ||
        C.ElemBase > Elems - C.NumSteps * M.Lanes)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk element range escapes the stream");
    if (C.RecBase < 0 || C.RecBase > C.RecEnd || C.RecEnd > NumRecs)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk record range escapes the record stream");
    if (C.TailBase < 0 ||
        C.TailBase + M.Lanes > static_cast<std::int64_t>(M.Tails.size()))
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk tail range escapes the tail table");
    if (C.FirstRow >= M.NumRows || C.LastRow >= M.NumRows)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk row bounds escape the matrix");
  }
  for (std::int32_t R : M.ZeroRows)
    if (R < 0 || R >= M.NumRows)
      return Status::outOfRange(
          "[cvr.blob.bounds] zero-row entry escapes the matrix");
  for (const CvrRecord &R : M.Recs)
    if (R.Pos < 0)
      return Status::outOfRange(
          "[cvr.blob.bounds] record position is negative");

  if (!M.isValid())
    return Status::dataLoss(
        "[cvr.blob.integrity] blob decodes but violates the CVR structural "
        "invariants (pads, record order, or tail consistency)");
  return M;
}

bool CvrMatrix::writeBinary(std::ostream &OS) const {
  return writeBlob(OS).ok();
}

bool CvrMatrix::readBinary(std::istream &IS, CvrMatrix &M) {
  StatusOr<CvrMatrix> R = readBlob(IS);
  if (!R.ok()) {
    M = CvrMatrix();
    return false;
  }
  M = std::move(*R);
  return true;
}

} // namespace cvr
