//===- core/CvrSerialize.cpp - CVR binary save/load -----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Version-3 (Compact) blob layout (little-endian, every field written
// explicitly):
//
//   magic "CVRF" | u32 version
//   header: NumRows i32, NumCols i32, Nnz i64, Lanes i32,
//           ForceGeneric u8, ChunkMult i32, ValueKind u8, ColIndexKind u8
//           | u32 crc32c(header bytes)
//   sections, in order: Chunks, Bands, ZeroRows, Recs, Tails, Vals, ColIdx
//   each section: u64 count | payload | u32 crc32c(payload)
//
// The two kind bytes select the element width of the Vals and ColIdx
// sections: F64/U32 store double / i32 payloads, F32x64 stores the value
// stream as f32, U16Band stores column indices as u16 band-relative
// deltas. Counts are element counts either way, so the chunk-table budget
// applies unchanged.
//
// Version-4 (Mapped) is the same blob with one change per section:
//
//   each section: u64 count | u8 padLen | padLen zero bytes | payload
//                 | u32 crc32c(payload)
//
// where padLen places the payload at a 64-byte-aligned *file offset*, so a
// page-aligned mmap of the file yields value/column-index/tail streams the
// AVX-512 kernels can execute in place (mapBlob — the serving daemon's
// zero-copy load path). Pad bytes must be zero and padLen < 64; a reader
// rejects anything else, so the every-bit-flip guarantee of v3 carries
// over.
//
// The section order is deliberate: the chunk table arrives first, so every
// later count has a strict structural bound before its allocation happens
// (Tails == Chunks * Lanes exactly, Vals/ColIdx == sum of NumSteps * Lanes
// exactly, Bands <= Chunks, ZeroRows <= NumRows). A corrupt or hostile
// count is rejected with OUT_OF_RANGE instead of commissioning memory.
//
// Reader diagnostics carry a stable bracketed rule id — e.g.
// "[cvr.blob.section-crc] ..." — which analysis::InvariantChecker::checkBlob
// maps back onto its dotted rule namespace. The ids are part of the
// interface; tests match on them.
//
// Versions 1 and 2 (no checksums, arrays before the chunk table) remain
// readable; v1 defaults the execution-engine fields (multiplier 1,
// unblocked).
//
//===----------------------------------------------------------------------===//

#include "core/CvrFormat.h"

#include "support/Crc32c.h"
#include "support/FailPoint.h"

#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <string>

namespace cvr {

namespace {

constexpr char Magic[4] = {'C', 'V', 'R', 'F'};
constexpr std::uint32_t CompactVersion = 3;
constexpr std::uint32_t MappedVersion = 4;
constexpr std::uint32_t MaxVersion = MappedVersion;

/// Alignment the Mapped layout guarantees for every section payload, as a
/// file offset — matches the AlignedBuffer/AVX-512 load alignment.
constexpr std::uint64_t MapAlignment = 64;

/// Structural ceilings for header-declared quantities. They bound what the
/// v3 reader will commission before the cheap exact checks take over; all
/// are far beyond any matrix the project handles.
constexpr std::uint64_t MaxChunks = 1ULL << 22;
constexpr std::uint64_t MaxLanes = 4096;
constexpr std::uint64_t MaxChunkMult = 1ULL << 20;
constexpr std::uint64_t MaxStreamElems = 1ULL << 40;

/// Legacy (v1/v2) cap: those blobs carry array counts before the chunk
/// table, so only this generic ceiling applies.
constexpr std::uint64_t MaxLegacyArrayElems = 1ULL << 40;

/// Header image length (the checksummed byte range): rows, cols, nnz,
/// lanes, force-generic, chunk multiplier, value kind, column-index kind.
constexpr std::size_t HeaderBytes = 4 + 4 + 8 + 4 + 1 + 4 + 1 + 1;

bool writeBytes(std::ostream &OS, const void *P, std::size_t N) {
  if (CVR_FAIL_POINT("serialize.write.short"))
    return false;
  OS.write(static_cast<const char *>(P), static_cast<std::streamsize>(N));
  return static_cast<bool>(OS);
}

bool readBytes(std::istream &IS, void *P, std::size_t N) {
  if (CVR_FAIL_POINT("serialize.read.short"))
    return false;
  IS.read(static_cast<char *>(P), static_cast<std::streamsize>(N));
  return static_cast<bool>(IS);
}

template <typename T> bool readPod(std::istream &IS, T &V) {
  return readBytes(IS, &V, sizeof(T));
}

/// Appends a POD field to the header image being checksummed.
template <typename T> void packField(std::string &Buf, const T &V) {
  Buf.append(reinterpret_cast<const char *>(&V), sizeof(T));
}

[[nodiscard]] Status truncated(const char *Where) {
  return Status::dataLoss(std::string("[cvr.blob.truncated] blob ends inside ") +
                          Where);
}

//===----------------------------------------------------------------------===//
// Shared diagnostics + validation (stream reader and mapped reader)
//===----------------------------------------------------------------------===//

[[nodiscard]] Status countMismatch(const char *Name, std::uint64_t N,
                                   std::int64_t Exact) {
  return Status::outOfRange(
      std::string("[cvr.blob.bounds] ") + Name + " count " +
      std::to_string(N) + " does not match the structural requirement of " +
      std::to_string(Exact));
}

[[nodiscard]] Status countOverBound(const char *Name, std::uint64_t N,
                                    std::uint64_t MaxElems) {
  return Status::outOfRange(std::string("[cvr.blob.bounds] ") + Name +
                            " count " + std::to_string(N) +
                            " exceeds the structural bound " +
                            std::to_string(MaxElems));
}

[[nodiscard]] Status badPad(const char *Name) {
  return Status::dataLoss(std::string("[cvr.blob.pad] ") + Name +
                          " section padding is corrupt (length out of range "
                          "or nonzero pad byte)");
}

/// Decodes and bounds-checks the checksummed header image (the CRC itself
/// is the caller's business, because stream and mapped readers obtain the
/// bytes differently).
[[nodiscard]] Status decodeHeaderImage(const char *Header,
                                       CvrMatrix::BlobFields &F) {
  std::int32_t Lanes32 = 0, Mult = 0;
  std::uint8_t Generic = 0, VKindByte = 0, IKindByte = 0;
  const char *P = Header;
  std::memcpy(F.NumRows, P, 4), P += 4;
  std::memcpy(F.NumCols, P, 4), P += 4;
  std::memcpy(F.Nnz, P, 8), P += 8;
  std::memcpy(&Lanes32, P, 4), P += 4;
  std::memcpy(&Generic, P, 1), P += 1;
  std::memcpy(&Mult, P, 4), P += 4;
  std::memcpy(&VKindByte, P, 1), P += 1;
  std::memcpy(&IKindByte, P, 1);

  if (*F.NumRows < 0 || *F.NumCols < 0 || *F.Nnz < 0)
    return Status::outOfRange(
        "[cvr.blob.bounds] header declares a negative shape");
  if (Lanes32 < 1 || static_cast<std::uint64_t>(Lanes32) > MaxLanes)
    return Status::outOfRange("[cvr.blob.bounds] lane count " +
                              std::to_string(Lanes32) +
                              " is outside [1, " + std::to_string(MaxLanes) +
                              "]");
  if (Mult < 1 || static_cast<std::uint64_t>(Mult) > MaxChunkMult)
    return Status::outOfRange("[cvr.blob.bounds] chunk multiplier " +
                              std::to_string(Mult) + " is outside [1, " +
                              std::to_string(MaxChunkMult) + "]");
  if (VKindByte > static_cast<std::uint8_t>(ValueKind::F32x64))
    return Status::outOfRange("[cvr.blob.bounds] unknown value kind " +
                              std::to_string(VKindByte));
  if (IKindByte > static_cast<std::uint8_t>(ColIndexKind::U16Band))
    return Status::outOfRange("[cvr.blob.bounds] unknown column-index kind " +
                              std::to_string(IKindByte));
  *F.Lanes = Lanes32;
  *F.ForceGeneric = Generic != 0;
  *F.ChunkMult = Mult;
  *F.VKind = static_cast<ValueKind>(VKindByte);
  *F.IKind = static_cast<ColIndexKind>(IKindByte);
  return Status::okStatus();
}

/// Exact/maximum counts the chunk table induces for the later sections.
struct SectionBudget {
  std::uint64_t TotalElems = 0; ///< Exact Vals/ColIdx length.
  std::uint64_t MaxRecs = 0;    ///< Upper bound on the record stream.
};

[[nodiscard]] Status computeSectionBudget(const std::vector<CvrChunk> &Chunks,
                                          int Lanes, std::int64_t Nnz,
                                          std::int32_t NumRows,
                                          SectionBudget &B) {
  B.TotalElems = 0;
  for (const CvrChunk &C : Chunks) {
    if (C.NumSteps < 0 ||
        static_cast<std::uint64_t>(C.NumSteps) > MaxStreamElems / Lanes)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk declares an unrepresentable step count " +
          std::to_string(C.NumSteps));
    B.TotalElems += static_cast<std::uint64_t>(C.NumSteps) * Lanes;
    if (B.TotalElems > MaxStreamElems)
      return Status::outOfRange(
          "[cvr.blob.bounds] total stream length exceeds the structural "
          "ceiling");
  }
  // Records: one per row finish plus at most Lanes steal events per chunk;
  // chunk-boundary rows finish twice. Anything past this bound cannot have
  // come from the converter.
  B.MaxRecs = static_cast<std::uint64_t>(Nnz) +
              static_cast<std::uint64_t>(NumRows) +
              Chunks.size() * (static_cast<std::uint64_t>(Lanes) + 2);
  return Status::okStatus();
}

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// Writes one section: u64 count, (Mapped) pad, payload, payload CRC.
/// \p Off tracks the absolute file offset so the Mapped layout can align
/// each payload to a 64-byte file offset.
template <typename T>
bool writeSection(std::ostream &OS, const T *Data, std::uint64_t N,
                  bool Mapped, std::uint64_t &Off) {
  if (!writeBytes(OS, &N, sizeof(N)))
    return false;
  Off += sizeof(N);
  if (Mapped) {
    std::uint8_t Pad = static_cast<std::uint8_t>(
        (MapAlignment - ((Off + 1) % MapAlignment)) % MapAlignment);
    if (!writeBytes(OS, &Pad, 1))
      return false;
    static const char Zeros[MapAlignment] = {};
    if (Pad != 0 && !writeBytes(OS, Zeros, Pad))
      return false;
    Off += 1 + Pad;
  }
  std::size_t Bytes = static_cast<std::size_t>(N) * sizeof(T);
  if (N != 0 && !writeBytes(OS, Data, Bytes))
    return false;
  std::uint32_t Crc = crc32c(N != 0 ? Data : nullptr, Bytes);
  if (!writeBytes(OS, &Crc, sizeof(Crc)))
    return false;
  Off += Bytes + sizeof(Crc);
  return true;
}

} // namespace

Status CvrMatrix::writeBlob(std::ostream &OS, BlobLayout Layout) const {
  const bool Mapped = Layout == BlobLayout::Mapped;
  if (!writeBytes(OS, Magic, sizeof(Magic)))
    return Status::unavailable("blob write failed at the magic");
  std::uint32_t V = Mapped ? MappedVersion : CompactVersion;
  if (!writeBytes(OS, &V, sizeof(V)))
    return Status::unavailable("blob write failed at the version");

  std::string Header;
  Header.reserve(32);
  packField(Header, NumRows);
  packField(Header, NumCols);
  packField(Header, Nnz);
  packField(Header, static_cast<std::int32_t>(Lanes));
  packField(Header, static_cast<std::uint8_t>(ForceGeneric));
  packField(Header, static_cast<std::int32_t>(ChunkMult));
  packField(Header, static_cast<std::uint8_t>(VKind));
  packField(Header, static_cast<std::uint8_t>(IKind));
  std::uint32_t HeaderCrc = crc32c(Header.data(), Header.size());
  if (!writeBytes(OS, Header.data(), Header.size()) ||
      !writeBytes(OS, &HeaderCrc, sizeof(HeaderCrc)))
    return Status::unavailable("blob write failed in the header");

  std::uint64_t Off = sizeof(Magic) + sizeof(V) + Header.size() + 4;
  bool Ok = writeSection(OS, Chunks.data(), Chunks.size(), Mapped, Off) &&
            writeSection(OS, Bands.data(), Bands.size(), Mapped, Off) &&
            writeSection(OS, ZeroRows.data(), ZeroRows.size(), Mapped, Off) &&
            writeSection(OS, Recs.data(), Recs.size(), Mapped, Off) &&
            writeSection(OS, Tails.data(), Tails.size(), Mapped, Off);
  if (Ok)
    Ok = VKind == ValueKind::F32x64
             ? writeSection(OS, Vals32.data(), Vals32.size(), Mapped, Off)
             : writeSection(OS, Vals.data(), Vals.size(), Mapped, Off);
  if (Ok)
    Ok = IKind == ColIndexKind::U16Band
             ? writeSection(OS, ColIdx16.data(), ColIdx16.size(), Mapped, Off)
             : writeSection(OS, ColIdx.data(), ColIdx.size(), Mapped, Off);
  if (!Ok)
    return Status::unavailable(
        "blob write failed mid-section (disk full or short write?)");
  OS.flush();
  if (!OS)
    return Status::unavailable("blob flush failed");
  return Status::okStatus();
}

namespace {

//===----------------------------------------------------------------------===//
// Stream reading
//===----------------------------------------------------------------------===//

/// Allocation shims so one section reader serves both container kinds.
template <typename T>
[[nodiscard]] Status resizeContainer(AlignedBuffer<T> &C, std::size_t N) {
  return C.tryResize(N);
}

template <typename T>
[[nodiscard]] Status resizeContainer(std::vector<T> &C, std::size_t N) {
  try {
    C.resize(N);
  } catch (const std::bad_alloc &) {
    return Status::resourceExhausted("section allocation of " +
                                     std::to_string(N) + " elements failed");
  }
  return Status::okStatus();
}

/// Consumes and validates a Mapped-layout section pad (u8 length + that
/// many zero bytes).
[[nodiscard]] Status readSectionPad(std::istream &IS, const char *Name) {
  std::uint8_t Pad = 0;
  if (!readPod(IS, Pad))
    return truncated((std::string("the ") + Name + " pad length").c_str());
  if (Pad >= MapAlignment)
    return badPad(Name);
  char Zeros[MapAlignment] = {};
  if (Pad != 0 && !readBytes(IS, Zeros, Pad))
    return truncated((std::string("the ") + Name + " pad").c_str());
  for (std::uint8_t I = 0; I < Pad; ++I)
    if (Zeros[I] != 0)
      return badPad(Name);
  return Status::okStatus();
}

/// Reads one v3/v4 section into \p Out. The count must satisfy the
/// structural bound \p MaxElems (and equal \p ExactElems when >= 0) BEFORE
/// any allocation happens; the payload must match its recorded CRC32C.
template <typename Container>
[[nodiscard]] Status readSection(std::istream &IS, Container &Out,
                                 const char *Name, bool Padded,
                   std::uint64_t MaxElems, std::int64_t ExactElems = -1) {
  std::uint64_t N = 0;
  if (!readPod(IS, N))
    return truncated((std::string("the ") + Name + " section count").c_str());
  if (ExactElems >= 0 && N != static_cast<std::uint64_t>(ExactElems))
    return countMismatch(Name, N, ExactElems);
  if (N > MaxElems)
    return countOverBound(Name, N, MaxElems);
  if (Padded) {
    Status S = readSectionPad(IS, Name);
    if (!S.ok())
      return S;
  }

  Status S = resizeContainer(Out, static_cast<std::size_t>(N));
  if (!S.ok())
    return S.withContext(Name);
  std::size_t Bytes = static_cast<std::size_t>(N) * sizeof(*Out.data());
  if (N != 0) {
    if (!readBytes(IS, Out.data(), Bytes))
      return truncated((std::string("the ") + Name + " payload").c_str());
    CVR_FAIL_POINT_CORRUPT("serialize.read.bitflip", Out.data(), Bytes);
  }
  std::uint32_t Want = 0;
  if (!readPod(IS, Want))
    return truncated((std::string("the ") + Name + " checksum").c_str());
  std::uint32_t Got = crc32c(N != 0 ? Out.data() : nullptr, Bytes);
  if (Got != Want)
    return Status::dataLoss(std::string("[cvr.blob.section-crc] ") + Name +
                            " payload fails its CRC32C (stored " +
                            std::to_string(Want) + ", computed " +
                            std::to_string(Got) + ")");
  return Status::okStatus();
}

/// Legacy (v1/v2) array: u64 count then payload, no checksum.
template <typename Container>
[[nodiscard]] Status readLegacyArray(std::istream &IS, Container &Out,
                                     const char *Name) {
  std::uint64_t N = 0;
  if (!readPod(IS, N))
    return truncated((std::string("the ") + Name + " section count").c_str());
  if (N > MaxLegacyArrayElems)
    return Status::outOfRange(std::string("[cvr.blob.bounds] ") + Name +
                              " count " + std::to_string(N) +
                              " exceeds the legacy array ceiling");
  Status S = resizeContainer(Out, static_cast<std::size_t>(N));
  if (!S.ok())
    return S.withContext(Name);
  if (N != 0 &&
      !readBytes(IS, Out.data(),
                 static_cast<std::size_t>(N) * sizeof(*Out.data())))
    return truncated((std::string("the ") + Name + " payload").c_str());
  return Status::okStatus();
}

/// Everything after the version word of a v3 (Compact) or v4 (Mapped,
/// \p Padded) blob.
[[nodiscard]] Status readChecksummedBody(std::istream &IS,
                                         CvrMatrix::BlobFields F,
                                         bool Padded) {
  // Header image: reread as one block so the CRC covers exactly the bytes
  // the writer checksummed.
  char Header[HeaderBytes];
  if (!readBytes(IS, Header, sizeof(Header)))
    return truncated("the header");
  std::uint32_t WantCrc = 0;
  if (!readPod(IS, WantCrc))
    return truncated("the header checksum");
  if (crc32c(Header, sizeof(Header)) != WantCrc)
    return Status::dataLoss("[cvr.blob.header-crc] header fails its CRC32C");
  Status S = decodeHeaderImage(Header, F);
  if (!S.ok())
    return S;
  const int Lanes32 = *F.Lanes;

  // Chunk table first: it induces the exact bounds for everything after.
  if (!(S = readSection(IS, *F.Chunks, "chunk table", Padded, MaxChunks)).ok())
    return S;
  SectionBudget B;
  if (!(S = computeSectionBudget(*F.Chunks, Lanes32, *F.Nnz, *F.NumRows, B))
           .ok())
    return S;
  std::uint64_t NumChunks = F.Chunks->size();

  if (!(S = readSection(IS, *F.Bands, "band table", Padded, NumChunks)).ok())
    return S;
  if (!(S = readSection(IS, *F.ZeroRows, "zero-row list", Padded,
                        static_cast<std::uint64_t>(*F.NumRows)))
           .ok())
    return S;
  if (!(S = readSection(IS, *F.Recs, "record stream", Padded, B.MaxRecs)).ok())
    return S;
  if (!(S = readSection(IS, *F.Tails, "tail table", Padded, MaxStreamElems,
                        static_cast<std::int64_t>(NumChunks * Lanes32)))
           .ok())
    return S;
  const auto ExactElems = static_cast<std::int64_t>(B.TotalElems);
  S = *F.VKind == ValueKind::F32x64
          ? readSection(IS, *F.Vals32, "value stream", Padded, MaxStreamElems,
                        ExactElems)
          : readSection(IS, *F.Vals, "value stream", Padded, MaxStreamElems,
                        ExactElems);
  if (!S.ok())
    return S;
  S = *F.IKind == ColIndexKind::U16Band
          ? readSection(IS, *F.ColIdx16, "column-index stream", Padded,
                        MaxStreamElems, ExactElems)
          : readSection(IS, *F.ColIdx, "column-index stream", Padded,
                        MaxStreamElems, ExactElems);
  if (!S.ok())
    return S;
  return Status::okStatus();
}

/// Everything after the version word of a v1/v2 blob (arrays precede the
/// execution-engine fields; no checksums, so only generic bounds apply).
[[nodiscard]] Status readLegacyBody(std::istream &IS, std::uint32_t V,
                      CvrMatrix::BlobFields F) {
  std::int32_t Lanes32 = 0;
  std::uint8_t Generic = 0;
  if (!readPod(IS, *F.NumRows) || !readPod(IS, *F.NumCols) ||
      !readPod(IS, *F.Nnz) || !readPod(IS, Lanes32) || !readPod(IS, Generic))
    return truncated("the header");
  if (*F.NumRows < 0 || *F.NumCols < 0 || *F.Nnz < 0 || Lanes32 < 1 ||
      static_cast<std::uint64_t>(Lanes32) > MaxLanes)
    return Status::outOfRange(
        "[cvr.blob.bounds] legacy header declares an invalid shape or lane "
        "count");
  *F.Lanes = Lanes32;
  *F.ForceGeneric = Generic != 0;
  // Legacy blobs predate the compressed streams: kinds are always full
  // width.
  *F.VKind = ValueKind::F64;
  *F.IKind = ColIndexKind::U32;

  Status S;
  if (!(S = readLegacyArray(IS, *F.Vals, "value stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.ColIdx, "column-index stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Recs, "record stream")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Tails, "tail table")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.Chunks, "chunk table")).ok())
    return S;
  if (!(S = readLegacyArray(IS, *F.ZeroRows, "zero-row list")).ok())
    return S;
  if (V >= 2) {
    std::int32_t Mult = 0;
    if (!readPod(IS, Mult))
      return truncated("the chunk multiplier");
    if (Mult < 1 || static_cast<std::uint64_t>(Mult) > MaxChunkMult)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk multiplier " + std::to_string(Mult) +
          " is outside [1, " + std::to_string(MaxChunkMult) + "]");
    *F.ChunkMult = Mult;
    if (!(S = readLegacyArray(IS, *F.Bands, "band table")).ok())
      return S;
  }
  return Status::okStatus();
}

/// Quick sanity shared by every decode path before the full structural
/// sweep below runs.
[[nodiscard]] Status crossCheckDecoded(const CvrMatrix &M) {
  const bool HasVals = M.valueKind() == ValueKind::F32x64
                           ? M.vals32() != nullptr
                           : M.vals() != nullptr;
  if (!HasVals && M.numNonZeros() != 0)
    return Status::outOfRange(
        "[cvr.blob.bounds] empty streams for a nonzero-bearing matrix");
  return Status::okStatus();
}

} // namespace

namespace {

/// Post-decode validation shared by readBlob and mapBlob: every offset a
/// kernel dereferences through must land inside its array before
/// isValid() (which indexes freely) runs.
[[nodiscard]] Status validateStructure(const CvrMatrix &M,
                                       std::size_t ValsLen,
                                       std::size_t ColIdxLen,
                                       std::size_t TailsLen,
                                       std::size_t RecsLen) {
  if (ValsLen != ColIdxLen)
    return Status::outOfRange(
        "[cvr.blob.bounds] value and column-index streams disagree in "
        "length");
  if (TailsLen != M.chunks().size() * static_cast<std::size_t>(M.lanes()))
    return Status::outOfRange(
        "[cvr.blob.bounds] tail table length does not equal chunks * lanes");
  auto Elems = static_cast<std::int64_t>(ValsLen);
  auto NumRecs = static_cast<std::int64_t>(RecsLen);
  for (const CvrChunk &C : M.chunks()) {
    if (C.ElemBase < 0 || C.NumSteps < 0 ||
        C.NumSteps > Elems / M.lanes() ||
        C.ElemBase > Elems - C.NumSteps * M.lanes())
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk element range escapes the stream");
    if (C.RecBase < 0 || C.RecBase > C.RecEnd || C.RecEnd > NumRecs)
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk record range escapes the record stream");
    if (C.TailBase < 0 ||
        C.TailBase + M.lanes() > static_cast<std::int64_t>(TailsLen))
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk tail range escapes the tail table");
    if (C.FirstRow >= M.numRows() || C.LastRow >= M.numRows())
      return Status::outOfRange(
          "[cvr.blob.bounds] chunk row bounds escape the matrix");
  }
  for (std::int32_t R : M.zeroRows())
    if (R < 0 || R >= M.numRows())
      return Status::outOfRange(
          "[cvr.blob.bounds] zero-row entry escapes the matrix");
  for (std::size_t I = 0; I < RecsLen; ++I)
    if (M.recs()[I].Pos < 0)
      return Status::outOfRange(
          "[cvr.blob.bounds] record position is negative");

  if (!M.isValid())
    return Status::dataLoss(
        "[cvr.blob.integrity] blob decodes but violates the CVR structural "
        "invariants (pads, record order, or tail consistency)");
  return Status::okStatus();
}

} // namespace

StatusOr<CvrMatrix> CvrMatrix::readBlob(std::istream &IS) {
  char Head[4];
  if (!readBytes(IS, Head, sizeof(Head)))
    return truncated("the magic");
  if (std::memcmp(Head, Magic, sizeof(Magic)) != 0)
    return Status::dataLoss(
        "[cvr.blob.magic] input does not start with the CVRF magic");
  std::uint32_t V = 0;
  if (!readPod(IS, V))
    return truncated("the version");
  if (V < 1 || V > MaxVersion)
    return Status::invalidArgument(
        "[cvr.blob.version] unsupported blob version " + std::to_string(V) +
        " (this build reads versions 1.." + std::to_string(MaxVersion) + ")");

  CvrMatrix M;
  BlobFields F{&M.NumRows,   &M.NumCols, &M.Nnz,    &M.Lanes,
               &M.ChunkMult, &M.ForceGeneric, &M.VKind, &M.IKind,
               &M.Vals,      &M.ColIdx,  &M.Vals32, &M.ColIdx16,
               &M.Recs,      &M.Tails,   &M.Chunks, &M.ZeroRows,
               &M.Bands};
  Status S = V >= CompactVersion
                 ? readChecksummedBody(IS, F, /*Padded=*/V >= MappedVersion)
                 : readLegacyBody(IS, V, F);
  if (!S.ok())
    return S;
  M.rebuildChunkColBases();
  const std::size_t ValsLen =
      M.VKind == ValueKind::F32x64 ? M.Vals32.size() : M.Vals.size();
  const std::size_t ColIdxLen =
      M.IKind == ColIndexKind::U16Band ? M.ColIdx16.size() : M.ColIdx.size();
  if (!(S = crossCheckDecoded(M)).ok())
    return S;
  if (!(S = validateStructure(M, ValsLen, ColIdxLen, M.Tails.size(),
                              M.Recs.size()))
           .ok())
    return S;
  return M;
}

//===----------------------------------------------------------------------===//
// Zero-copy mapped decode
//===----------------------------------------------------------------------===//

namespace {

/// Bounds-checked cursor over the mapped image. Every read is validated
/// against the image end before any byte is touched, so a truncated file
/// whose size is known up front can never be over-read (concurrent
/// truncation after the size was taken is the SIGBUS guard's business —
/// see io/MmapFile.h).
struct MemCursor {
  const unsigned char *Base;
  const unsigned char *P;
  const unsigned char *End;

  bool read(void *Out, std::size_t N) {
    if (static_cast<std::size_t>(End - P) < N)
      return false;
    std::memcpy(Out, P, N);
    P += N;
    return true;
  }

  template <typename T> bool pod(T &V) { return read(&V, sizeof(T)); }

  /// Advances past \p N bytes, returning their start (nullptr if the
  /// image is too short).
  const unsigned char *take(std::size_t N) {
    if (static_cast<std::size_t>(End - P) < N)
      return nullptr;
    const unsigned char *Q = P;
    P += N;
    return Q;
  }
};

/// One decoded mapped section: a pointer into the image plus its count.
template <typename T> struct MappedSection {
  const T *Ptr = nullptr;
  std::uint64_t Count = 0;
};

/// Mapped-layout section decode: validates the count bounds, the pad, the
/// payload CRC32C, and the payload's 64-byte alignment within the image
/// before exposing the pointer. Nothing is copied.
template <typename T>
[[nodiscard]] Status viewSection(MemCursor &C, MappedSection<T> &Out,
                                 const char *Name, std::uint64_t MaxElems,
                                 std::int64_t ExactElems = -1) {
  std::uint64_t N = 0;
  if (!C.pod(N))
    return truncated((std::string("the ") + Name + " section count").c_str());
  if (ExactElems >= 0 && N != static_cast<std::uint64_t>(ExactElems))
    return countMismatch(Name, N, ExactElems);
  if (N > MaxElems)
    return countOverBound(Name, N, MaxElems);

  std::uint8_t Pad = 0;
  if (!C.pod(Pad))
    return truncated((std::string("the ") + Name + " pad length").c_str());
  if (Pad >= MapAlignment)
    return badPad(Name);
  const unsigned char *PadBytes = C.take(Pad);
  if (!PadBytes)
    return truncated((std::string("the ") + Name + " pad").c_str());
  for (std::uint8_t I = 0; I < Pad; ++I)
    if (PadBytes[I] != 0)
      return badPad(Name);

  std::size_t Bytes = static_cast<std::size_t>(N) * sizeof(T);
  const unsigned char *Payload = C.take(Bytes);
  if (!Payload)
    return truncated((std::string("the ") + Name + " payload").c_str());
  // A self-consistent blob could still carry a pad that does not land the
  // payload on the map alignment (hand-built or rewritten); adopting such
  // a pointer would trade corruption for misaligned SIMD loads, so it is
  // structurally rejected.
  if ((static_cast<std::size_t>(Payload - C.Base) % MapAlignment) != 0)
    return Status::outOfRange(
        std::string("[cvr.blob.bounds] ") + Name +
        " payload is not 64-byte aligned in the mapped image");

  std::uint32_t Want = 0;
  if (!C.pod(Want))
    return truncated((std::string("the ") + Name + " checksum").c_str());
  std::uint32_t Got = crc32c(N != 0 ? Payload : nullptr, Bytes);
  if (Got != Want)
    return Status::dataLoss(std::string("[cvr.blob.section-crc] ") + Name +
                            " payload fails its CRC32C (stored " +
                            std::to_string(Want) + ", computed " +
                            std::to_string(Got) + ")");
  Out.Ptr = reinterpret_cast<const T *>(Payload);
  Out.Count = N;
  return Status::okStatus();
}

/// Copies a mapped section into a std::vector (the small metadata tables;
/// the hot streams stay as views).
template <typename T>
[[nodiscard]] Status copySection(const MappedSection<T> &S,
                                 std::vector<T> &Out, const char *Name) {
  try {
    Out.assign(S.Ptr, S.Ptr + S.Count);
  } catch (const std::bad_alloc &) {
    return Status::resourceExhausted(std::string(Name) + ": allocation of " +
                                     std::to_string(S.Count) +
                                     " elements failed");
  }
  return Status::okStatus();
}

} // namespace

StatusOr<CvrMatrix> CvrMatrix::mapBlob(const void *Data, std::size_t Bytes) {
  if ((reinterpret_cast<std::uintptr_t>(Data) % MapAlignment) != 0)
    return Status::failedPrecondition(
        "mapBlob: image base is not 64-byte aligned (a page-aligned mmap "
        "always is; fall back to readBlob)");
  const auto *Base = static_cast<const unsigned char *>(Data);
  MemCursor C{Base, Base, Base + Bytes};

  char Head[4];
  if (!C.read(Head, sizeof(Head)))
    return truncated("the magic");
  if (std::memcmp(Head, Magic, sizeof(Magic)) != 0)
    return Status::dataLoss(
        "[cvr.blob.magic] input does not start with the CVRF magic");
  std::uint32_t V = 0;
  if (!C.pod(V))
    return truncated("the version");
  if (V < 1 || V > MaxVersion)
    return Status::invalidArgument(
        "[cvr.blob.version] unsupported blob version " + std::to_string(V) +
        " (this build reads versions 1.." + std::to_string(MaxVersion) + ")");
  if (V != MappedVersion)
    return Status::failedPrecondition(
        "mapBlob: blob version " + std::to_string(V) +
        " is not the mapped layout (" + std::to_string(MappedVersion) +
        "); load it with readBlob, which copies");

  char Header[HeaderBytes];
  if (!C.read(Header, sizeof(Header)))
    return truncated("the header");
  std::uint32_t WantCrc = 0;
  if (!C.pod(WantCrc))
    return truncated("the header checksum");
  if (crc32c(Header, sizeof(Header)) != WantCrc)
    return Status::dataLoss("[cvr.blob.header-crc] header fails its CRC32C");

  CvrMatrix M;
  BlobFields F{&M.NumRows,   &M.NumCols, &M.Nnz,    &M.Lanes,
               &M.ChunkMult, &M.ForceGeneric, &M.VKind, &M.IKind,
               &M.Vals,      &M.ColIdx,  &M.Vals32, &M.ColIdx16,
               &M.Recs,      &M.Tails,   &M.Chunks, &M.ZeroRows,
               &M.Bands};
  Status S = decodeHeaderImage(Header, F);
  if (!S.ok())
    return S;
  const int Lanes32 = M.Lanes;

  // Chunk table first (copied: the scheduler mutates nothing, but the
  // table is tiny and the vector type is part of the public accessors).
  MappedSection<CvrChunk> ChunksSec;
  if (!(S = viewSection(C, ChunksSec, "chunk table", MaxChunks)).ok())
    return S;
  if (!(S = copySection(ChunksSec, M.Chunks, "chunk table")).ok())
    return S;
  SectionBudget B;
  if (!(S = computeSectionBudget(M.Chunks, Lanes32, M.Nnz, M.NumRows, B))
           .ok())
    return S;
  std::uint64_t NumChunks = M.Chunks.size();

  MappedSection<CvrBand> BandsSec;
  MappedSection<std::int32_t> ZeroSec, TailsSec;
  MappedSection<CvrRecord> RecsSec;
  if (!(S = viewSection(C, BandsSec, "band table", NumChunks)).ok())
    return S;
  if (!(S = viewSection(C, ZeroSec, "zero-row list",
                        static_cast<std::uint64_t>(M.NumRows)))
           .ok())
    return S;
  if (!(S = viewSection(C, RecsSec, "record stream", B.MaxRecs)).ok())
    return S;
  if (!(S = viewSection(C, TailsSec, "tail table", MaxStreamElems,
                        static_cast<std::int64_t>(NumChunks * Lanes32)))
           .ok())
    return S;

  // The hot streams alias the mapped image — the zero-copy contract. The
  // element type of the two stream sections follows the header kinds.
  const auto ExactElems = static_cast<std::int64_t>(B.TotalElems);
  std::size_t ValsLen = 0, ColIdxLen = 0;
  if (M.VKind == ValueKind::F32x64) {
    MappedSection<float> ValsSec;
    if (!(S = viewSection(C, ValsSec, "value stream", MaxStreamElems,
                          ExactElems))
             .ok())
      return S;
    M.Vals32 = AlignedBuffer<float>::viewExternal(
        ValsSec.Ptr, static_cast<std::size_t>(ValsSec.Count));
    ValsLen = static_cast<std::size_t>(ValsSec.Count);
  } else {
    MappedSection<double> ValsSec;
    if (!(S = viewSection(C, ValsSec, "value stream", MaxStreamElems,
                          ExactElems))
             .ok())
      return S;
    M.Vals = AlignedBuffer<double>::viewExternal(
        ValsSec.Ptr, static_cast<std::size_t>(ValsSec.Count));
    ValsLen = static_cast<std::size_t>(ValsSec.Count);
  }
  if (M.IKind == ColIndexKind::U16Band) {
    MappedSection<std::uint16_t> ColIdxSec;
    if (!(S = viewSection(C, ColIdxSec, "column-index stream", MaxStreamElems,
                          ExactElems))
             .ok())
      return S;
    M.ColIdx16 = AlignedBuffer<std::uint16_t>::viewExternal(
        ColIdxSec.Ptr, static_cast<std::size_t>(ColIdxSec.Count));
    ColIdxLen = static_cast<std::size_t>(ColIdxSec.Count);
  } else {
    MappedSection<std::int32_t> ColIdxSec;
    if (!(S = viewSection(C, ColIdxSec, "column-index stream", MaxStreamElems,
                          ExactElems))
             .ok())
      return S;
    M.ColIdx = AlignedBuffer<std::int32_t>::viewExternal(
        ColIdxSec.Ptr, static_cast<std::size_t>(ColIdxSec.Count));
    ColIdxLen = static_cast<std::size_t>(ColIdxSec.Count);
  }

  if (!(S = copySection(BandsSec, M.Bands, "band table")).ok())
    return S;
  if (!(S = copySection(ZeroSec, M.ZeroRows, "zero-row list")).ok())
    return S;
  if (!(S = copySection(RecsSec, M.Recs, "record stream")).ok())
    return S;
  M.Tails = AlignedBuffer<std::int32_t>::viewExternal(
      TailsSec.Ptr, static_cast<std::size_t>(TailsSec.Count));

  M.rebuildChunkColBases();
  if (!(S = crossCheckDecoded(M)).ok())
    return S;
  if (!(S = validateStructure(M, ValsLen, ColIdxLen, M.Tails.size(),
                              M.Recs.size()))
           .ok())
    return S;
  return M;
}

bool CvrMatrix::writeBinary(std::ostream &OS) const {
  return writeBlob(OS).ok();
}

bool CvrMatrix::readBinary(std::istream &IS, CvrMatrix &M) {
  StatusOr<CvrMatrix> R = readBlob(IS);
  if (!R.ok()) {
    M = CvrMatrix();
    return false;
  }
  M = std::move(*R);
  return true;
}

} // namespace cvr
