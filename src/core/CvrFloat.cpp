//===- core/CvrFloat.cpp - Single-precision CVR (omega = 16) --------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/CvrFloat.h"

#include "core/CvrConverter.h"
#include "simd/Simd.h"
#include "support/Annotations.h"
#include "support/ParallelFor.h"
#include "support/Status.h"

#include <cassert>
#include <limits>

namespace cvr {

namespace {

/// Write-back with the same shared-row rule as the f64 kernel.
CVR_HOT inline void writeBackF(float *Y, std::int32_t Row, float V,
                               bool Shared) {
  if (Shared) {
#pragma omp atomic
    Y[Row] += V;
  } else {
    Y[Row] = V;
  }
}

#if CVR_SIMD_AVX512

/// Applies every record with Pos < Limit against the 16-lane accumulator;
/// see the f64 applyRecords for the structure.
CVR_HOT inline __m512 applyRecordsF(__m512 VOut, const CvrRecord *Recs,
                            std::int64_t &RecIdx, std::int64_t RecEnd,
                            std::int64_t Limit, float *Y, float *TResult) {
  alignas(64) std::int32_t WbBuf[16];
  __mmask16 FeedMask = 0, ClearMask = 0;
  do {
    const CvrRecord &R = Recs[RecIdx];
    int Off = static_cast<int>(R.Pos & 15);
    auto Bit = static_cast<__mmask16>(1U << Off);
    if (!R.Steal && !R.Shared) {
      WbBuf[Off] = R.Wb;
      FeedMask |= Bit;
    } else {
      float V = _mm512_mask_reduce_add_ps(Bit, VOut);
      if (R.Steal) {
        TResult[R.Wb] += V;
      } else {
#pragma omp atomic
        Y[R.Wb] += V;
      }
    }
    ClearMask |= Bit;
    ++RecIdx;
  } while (RecIdx < RecEnd && Recs[RecIdx].Pos < Limit);
  if (FeedMask) {
    __m512i Idx = _mm512_load_si512(reinterpret_cast<const void *>(WbBuf));
    _mm512_mask_i32scatter_ps(Y, FeedMask, Idx, VOut, 4);
  }
  return _mm512_maskz_mov_ps(static_cast<__mmask16>(~ClearMask), VOut);
}

/// One chunk of the 16-lane vectorized kernel: one 64 B value load, one
/// 64 B index load, one 16-wide gather and one FMA per step.
CVR_HOT void runChunkAvxF(const CvrMatrixF &M, const CvrChunk &C,
                          const float *X,
                  float *Y) {
  constexpr int W = 16;
  // ElemBase is a multiple of W (the converter pads chunks to whole
  // 16-float steps), so both streams stay on 64-byte boundaries.
  const float *Vals = simd::assumeAligned(M.vals() + C.ElemBase);
  const std::int32_t *Cols = simd::assumeAligned(M.colIdx() + C.ElemBase);
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  alignas(64) float TResult[W] = {0};
  __m512 VOut = _mm512_setzero_ps();

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    if (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      VOut = applyRecordsF(VOut, Recs, RecIdx, RecEnd, (I + 1) * W, Y,
                           TResult);
    __m512i Idx = _mm512_load_si512(
        reinterpret_cast<const void *>(Cols + I * W));
    __m512 Xs = _mm512_i32gather_ps(Idx, X, 4);
    __m512 Vs = _mm512_load_ps(Vals + I * W);
    VOut = _mm512_fmadd_ps(Vs, Xs, VOut);
  }

  if (RecIdx < RecEnd)
    applyRecordsF(VOut, Recs, RecIdx, RecEnd,
                  std::numeric_limits<std::int64_t>::max(), Y, TResult);

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    writeBackF(Y, Row, TResult[K], Shared);
  }
}

#endif // CVR_SIMD_AVX512

/// Generic any-width f32 kernel.
void runChunkGenericF(const CvrMatrixF &M, const CvrChunk &C, const float *X,
                      float *Y) {
  const int W = M.lanes();
  const float *Vals = M.vals() + C.ElemBase;
  const std::int32_t *Cols = M.colIdx() + C.ElemBase;
  const CvrRecord *Recs = M.recs();
  std::int64_t RecIdx = C.RecBase;
  const std::int64_t RecEnd = C.RecEnd;

  std::vector<float> TResult(W, 0.0f);
  std::vector<float> VOut(W, 0.0f);

  auto Apply = [&](const CvrRecord &R) {
    int Off = static_cast<int>(R.Pos % W);
    if (R.Steal)
      TResult[R.Wb] += VOut[Off];
    else
      writeBackF(Y, R.Wb, VOut[Off], R.Shared);
    VOut[Off] = 0.0f;
  };

  for (std::int64_t I = 0; I < C.NumSteps; ++I) {
    while (RecIdx < RecEnd && Recs[RecIdx].Pos < (I + 1) * W)
      Apply(Recs[RecIdx++]);
    for (int K = 0; K < W; ++K)
      VOut[K] += Vals[I * W + K] * X[Cols[I * W + K]];
  }
  while (RecIdx < RecEnd)
    Apply(Recs[RecIdx++]);

  const std::int32_t *Tails = M.tails() + C.TailBase;
  for (int K = 0; K < W; ++K) {
    std::int32_t Row = Tails[K];
    if (Row < 0)
      continue;
    bool Shared = Row == C.FirstRow || Row == C.LastRow;
    writeBackF(Y, Row, TResult[K], Shared);
  }
}

} // namespace

StatusOr<CvrMatrixF> CvrMatrixF::tryFromCsr(const CsrMatrix &A,
                                            const CvrOptionsF &Opts) {
  if (Opts.ColBlockBytes != 0)
    return Status::invalidArgument(
        "the f32 CVR pipeline does not implement x-vector column blocking "
        "(ColBlockBytes=" +
        std::to_string(Opts.ColBlockBytes) +
        "); use ColBlockBytes=0, or the double pipeline's "
        "ValueKind::F32x64 stream for banded reduced-precision gathers");
  return fromCsr(A, Opts);
}

CvrMatrixF CvrMatrixF::fromCsr(const CsrMatrix &A, const CvrOptionsF &Opts) {
  assert(Opts.ColBlockBytes == 0 &&
         "f32 pipeline has no blocking; tryFromCsr reports this recoverably");
  detail::ConverterConfig Cfg;
  Cfg.Lanes = Opts.Lanes;
  Cfg.NumThreads = Opts.NumThreads;
  Cfg.EnableStealing = Opts.EnableStealing;
  // One step's indices already fill a 512-bit register at width 16; only
  // narrower lane counts would leave partial index loads, and those run
  // through the generic kernel anyway.
  Cfg.PadEvenSteps = false;

  detail::ConvertedStreams<float> S =
      detail::convertToCvrStreams<float>(A, Cfg);
  if (!S.Ok)
    fatalAllocFailure(static_cast<std::size_t>(A.numNonZeros()) *
                      sizeof(float));

  CvrMatrixF M;
  M.NumRows = A.numRows();
  M.NumCols = A.numCols();
  M.Nnz = A.numNonZeros();
  M.Lanes = Opts.Lanes;
  M.ForceGeneric = Opts.ForceGenericKernel;
  M.Vals = std::move(S.Vals);
  M.ColIdx = std::move(S.ColIdx);
  M.Recs = std::move(S.Recs);
  M.Tails = std::move(S.Tails);
  M.Chunks = std::move(S.Chunks);
  M.ZeroRows = std::move(S.ZeroRows);
  return M;
}

std::size_t CvrMatrixF::formatBytes() const {
  return Vals.size() * sizeof(float) + ColIdx.size() * sizeof(std::int32_t) +
         Recs.size() * sizeof(CvrRecord) +
         Tails.size() * sizeof(std::int32_t) +
         Chunks.size() * sizeof(CvrChunk) +
         ZeroRows.size() * sizeof(std::int32_t);
}

void cvrSpmvF(const CvrMatrixF &M, const float *X, float *Y) {
  for (std::int32_t R : M.zeroRows())
    Y[R] = 0.0f;

  const std::vector<CvrChunk> &Chunks = M.chunks();
  int NumChunks = static_cast<int>(Chunks.size());
#if CVR_SIMD_AVX512
  bool UseAvx = M.lanes() == 16 && !M.forcesGenericKernel();
#else
  bool UseAvx = false;
#endif

  ompParallelFor(NumChunks, NumChunks, [&](int T) {
#if CVR_SIMD_AVX512
    if (UseAvx)
      runChunkAvxF(M, Chunks[T], X, Y);
    else
      runChunkGenericF(M, Chunks[T], X, Y);
#else
    (void)UseAvx;
    runChunkGenericF(M, Chunks[T], X, Y);
#endif
  });
}

} // namespace cvr
