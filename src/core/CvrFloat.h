//===- core/CvrFloat.h - Single-precision CVR (omega = 16) ------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-precision CVR pipeline. The paper fixes the tracker count at
/// the SIMD lane count — "8 for double precision and 16 for single
/// precision on KNL" (Section 4.2) — so the f32 format streams 16 lanes per
/// step and its AVX-512 kernel consumes one full 512-bit value load, one
/// full 512-bit index load, and one 16-wide gather+FMA per step (no column
/// double-pumping needed: the indices of one step already fill a register).
///
/// Values are converted from the double-precision CSR input at preprocess
/// time; x and y are float vectors. Use this path when the application
/// tolerates f32 accuracy and wants the 2x lane-width throughput.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVRFLOAT_H
#define CVR_CORE_CVRFLOAT_H

#include "core/CvrFormat.h"
#include "matrix/Csr.h"
#include "support/AlignedBuffer.h"

#include <cstdint>
#include <vector>

namespace cvr {

/// Conversion options for the f32 pipeline.
struct CvrOptionsF {
  /// SIMD lanes (omega): 16 for f32 on AVX-512. Other widths run through
  /// the generic kernel.
  int Lanes = 16;
  int NumThreads = 0;        ///< <= 0 selects the OpenMP default.
  bool EnableStealing = true;
  bool ForceGenericKernel = false;
  /// x-vector column blocking, accepted for option-struct parity with
  /// CvrOptions but NOT implemented by the f32 pipeline: tryFromCsr
  /// rejects any nonzero value with INVALID_ARGUMENT (and fromCsr asserts)
  /// rather than silently converting unblocked. Callers that need banded
  /// gathers in reduced precision use the double pipeline's
  /// ValueKind::F32x64 stream, which composes with ColBlockBytes.
  std::int64_t ColBlockBytes = 0;
};

/// A matrix converted to single-precision CVR. Shares the record/chunk
/// model with CvrMatrix (see CvrFormat.h).
class CvrMatrixF {
public:
  /// Converts \p A, casting values to float. Asserts on options the f32
  /// pipeline cannot honor (nonzero ColBlockBytes); production callers
  /// with untrusted options use tryFromCsr.
  static CvrMatrixF fromCsr(const CsrMatrix &A, const CvrOptionsF &Opts = {});

  /// Recoverable conversion: INVALID_ARGUMENT when the options request a
  /// feature this pipeline does not implement (currently any nonzero
  /// ColBlockBytes — see CvrOptionsF::ColBlockBytes).
  [[nodiscard]] static StatusOr<CvrMatrixF>
  tryFromCsr(const CsrMatrix &A, const CvrOptionsF &Opts = {});

  std::int32_t numRows() const { return NumRows; }
  std::int32_t numCols() const { return NumCols; }
  std::int64_t numNonZeros() const { return Nnz; }
  int lanes() const { return Lanes; }
  int numChunks() const { return static_cast<int>(Chunks.size()); }

  const std::vector<CvrChunk> &chunks() const { return Chunks; }
  const float *vals() const { return Vals.data(); }
  const std::int32_t *colIdx() const { return ColIdx.data(); }
  const CvrRecord *recs() const { return Recs.data(); }
  const std::int32_t *tails() const { return Tails.data(); }
  const std::vector<std::int32_t> &zeroRows() const { return ZeroRows; }
  bool forcesGenericKernel() const { return ForceGeneric; }

  std::size_t formatBytes() const;

private:
  std::int32_t NumRows = 0;
  std::int32_t NumCols = 0;
  std::int64_t Nnz = 0;
  int Lanes = 16;
  bool ForceGeneric = false;

  AlignedBuffer<float> Vals;
  AlignedBuffer<std::int32_t> ColIdx;
  std::vector<CvrRecord> Recs;
  AlignedBuffer<std::int32_t> Tails;
  std::vector<CvrChunk> Chunks;
  std::vector<std::int32_t> ZeroRows;
};

/// Computes y = A * x in single precision. \p Y is overwritten.
void cvrSpmvF(const CvrMatrixF &M, const float *X, float *Y);

} // namespace cvr

#endif // CVR_CORE_CVRFLOAT_H
