//===- core/CvrSpmv.h - SpMV over the CVR format ----------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CVR SpMV kernel (Section 5 / Algorithm 4): per chunk, a dense stream
/// of `steps x 8` elements is consumed with one aligned value load, one
/// column gather, and one FMA per step; the conversion-time records scatter
/// lane partial sums into y (feed part) or into the chunk's `t_result`
/// slots (steal part), which the tail array flushes at the end. Column
/// indices are double-pumped: one 512-bit int32 load feeds two gather steps
/// (the `i % 16` trick of Algorithm 4 l.22-26).
///
/// Two kernels are provided behind one entry point: the AVX-512 kernel for
/// 8-lane matrices, and a generic any-width kernel used by the lane-count
/// ablation and on hosts without AVX-512.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_CORE_CVRSPMV_H
#define CVR_CORE_CVRSPMV_H

#include "core/CvrFormat.h"
#include "formats/SpmvKernel.h"

namespace cvr {

/// Computes y = A * x from the converted matrix. \p Y is overwritten.
/// \p PrefetchDistance selects the software-prefetch kernel variant
/// (steps ahead at which x gather targets are touched); it is snapped to
/// the supported set {0, 2, 4, 8} and 0 disables prefetching.
void cvrSpmv(const CvrMatrix &M, const double *X, double *Y,
             int PrefetchDistance = 0);

/// Snaps a requested prefetch distance up to the supported set {0, 2, 4, 8}
/// (the distances the kernel templates are instantiated for).
int snapPrefetchDistance(int D);

/// Fused SpMV: computes y = A * x and applies \p E at each row's finalize
/// point while the value is still in registers. Exclusive rows (feed
/// records and tails that no neighbouring chunk touches) take the epilogue
/// inside the parallel chunk sweep; chunk-boundary and empty rows — exactly
/// the set in M.zeroRows() — are finished by a sequential cleanup pass
/// afterwards, in zero-row order. Partial accumulators merge in chunk index
/// order, cleanup last, so a given matrix configuration reduces in a fixed
/// order. Column-blocked matrices finish no row until the last band, so
/// they compose cvrSpmv with the scalar epilogue sweep instead.
void cvrSpmvFused(const CvrMatrix &M, const double *X, double *Y,
                  FusedEpilogue &E, int PrefetchDistance = 0);

/// Implemented by every SpmvKernel that executes a CvrMatrix (CvrKernel
/// here, TunedCvrKernel in src/engine), so the checked-execution and
/// invariant machinery can reach the underlying format through one
/// dynamic_cast regardless of the wrapper.
class CvrMatrixSource {
public:
  virtual ~CvrMatrixSource() = default;

  /// The converted matrix the kernel runs (valid after prepare()).
  virtual const CvrMatrix &cvrMatrix() const = 0;

  /// The prefetch distance run() uses; the checked shadow kernel replays
  /// the same variant.
  virtual int cvrPrefetchDistance() const { return 0; }
};

/// SpmvKernel adapter so CVR plugs into the common benchmark harness.
class CvrKernel : public SpmvKernel, public CvrMatrixSource {
public:
  explicit CvrKernel(CvrOptions Opts = {});

  std::string name() const override { return "CVR"; }

  void prepare(const CsrMatrix &A) override;

  /// Recoverable preparation through CvrMatrix::tryFromCsr — no abort, no
  /// exception; the degradation ladder's first-choice entry point.
  [[nodiscard]] Status prepareStatus(const CsrMatrix &A) override;

  void run(const double *X, double *Y) const override;

  std::int64_t preparedRows() const override { return M.numRows(); }

  std::int64_t preparedCols() const override { return M.numCols(); }

  /// Native fused path (cvrSpmvFused) with the kernel's configured
  /// prefetch distance.
  void runFused(const double *X, double *Y,
                FusedEpilogue &E) const override;

  /// Native SpMM path (core/CvrSpmm.h): the CVR stream is read once per
  /// register block of panel columns, under the kernel's configured
  /// RhsBlock and prefetch distance.
  [[nodiscard]] Status runBatch(const double *X, std::size_t LdX, double *Y,
                                std::size_t LdY,
                                int NumVectors) const override;

  /// Native fused SpMM path (cvrSpmmFused).
  [[nodiscard]] Status runBatchFused(const double *X, std::size_t LdX,
                                     double *Y, std::size_t LdY,
                                     int NumVectors,
                                     FusedBatchEpilogue &E) const override;

  bool traceRun(MemAccessSink &Sink, const double *X,
                double *Y) const override;

  bool traceRunFused(MemAccessSink &Sink, const double *X, double *Y,
                     FusedEpilogue &E) const override;

  std::size_t formatBytes() const override;

  /// The converted matrix (valid after prepare()); exposed for tests and
  /// the locality tracer.
  const CvrMatrix &matrix() const { return M; }

  /// The execution options the kernel was constructed with (the SpMM path
  /// reads its RhsBlock and prefetch distance from here).
  const CvrOptions &options() const { return Opts; }

  const CvrMatrix &cvrMatrix() const override { return M; }
  int cvrPrefetchDistance() const override { return Opts.PrefetchDistance; }

private:
  CvrOptions Opts;
  CvrMatrix M;
};

} // namespace cvr

#endif // CVR_CORE_CVRSPMV_H
