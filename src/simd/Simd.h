//===- simd/Simd.h - Portable 8-lane double vector --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin SIMD abstraction with exactly the operations the paper's kernels
/// need: aligned load/store, 8-way index gather, fused multiply-add, lane
/// spill/reload, and horizontal reduction. When the translation unit is
/// compiled with AVX-512F the operations map 1:1 onto 512-bit intrinsics
/// (VecD8 is a __m512d); otherwise a scalar loop implementation with
/// identical semantics is used, so every kernel in this project runs on any
/// x86-64 (or indeed any) host.
///
/// The lane count is fixed at 8 because the paper evaluates double-precision
/// SpMV, where omega = 512 / 64 = 8 on KNL. The generic-width scalar kernels
/// used in the lane-count ablation live in core/CvrSpmvGeneric.h and do not
/// go through this header.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SIMD_SIMD_H
#define CVR_SIMD_SIMD_H

#include <cstdint>
#include <cstring>

#if defined(__AVX512F__)
#include <immintrin.h>
#define CVR_SIMD_AVX512 1
#else
#define CVR_SIMD_AVX512 0
#endif

namespace cvr {
namespace simd {

/// Number of double-precision lanes in one vector register (the paper's
/// omega for f64).
inline constexpr int DoubleLanes = 8;

/// Asserts 64-byte alignment provenance on a pointer. The two consumers:
/// the compiler (via __builtin_assume_aligned, which licenses aligned
/// vector loads), and the `lint.simd.aligned` check in tools/lint/, which
/// only accepts a raw aligned intrinsic when its pointer traces back to an
/// AlignedBuffer, an alignas declaration, or this wrapper. Use it where the
/// alignment is real but not locally visible — e.g. a stream base plus a
/// chunk offset that the converter padded to a full vector.
template <typename T> inline T *assumeAligned(T *P) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<T *>(__builtin_assume_aligned(P, 64));
#else
  return P;
#endif
}

#if CVR_SIMD_AVX512

/// Eight int32 column indices (one gather's worth).
struct VecI8 {
  __m256i Reg;
};

/// Sixteen int32 column indices: one 512-bit load that feeds two gather
/// steps (the paper's `i % 16` double-pumping trick, Algorithm 4 l.22-26).
struct VecI16 {
  __m512i Reg;

  /// Loads 16 int32 from 64-byte aligned memory.
  static VecI16 loadAligned(const std::int32_t *P) {
    return {_mm512_load_si512(reinterpret_cast<const void *>(P))};
  }

  /// Loads 16 band-local uint16 indices, widens them to int32
  /// (_mm512_cvtepu16_epi32), and rebases them onto the owning column
  /// band by adding \p Base to every lane — the compressed-index twin of
  /// loadAligned, feeding the same two gather steps.
  static VecI16 loadU16Widen(const std::uint16_t *P, std::int32_t Base) {
    __m256i Raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P));
    return {_mm512_add_epi32(_mm512_cvtepu16_epi32(Raw),
                             _mm512_set1_epi32(Base))};
  }

  /// Lower 8 indices.
  VecI8 lo() const { return {_mm512_castsi512_si256(Reg)}; }

  /// Upper 8 indices.
  VecI8 hi() const { return {_mm512_extracti64x4_epi64(Reg, 1)}; }
};

/// Eight doubles.
struct VecD8 {
  __m512d Reg;

  static VecD8 zero() { return {_mm512_setzero_pd()}; }

  static VecD8 broadcast(double V) { return {_mm512_set1_pd(V)}; }

  /// Loads 8 doubles from 64-byte aligned memory.
  static VecD8 loadAligned(const double *P) { return {_mm512_load_pd(P)}; }

  /// Loads 8 fp32 stream values and widens them to fp64
  /// (_mm256_loadu_ps + _mm512_cvtps_pd): the mixed-precision value-stream
  /// load — half the stream bytes of loadAligned, full-precision
  /// accumulation downstream.
  static VecD8 loadF32Widen(const float *P) {
    return {_mm512_cvtps_pd(_mm256_loadu_ps(P))};
  }

  /// Loads 8 doubles from unaligned memory. Dense panel rows are only as
  /// aligned as the caller's leading dimension allows, so the SpMM kernels
  /// use the unaligned forms throughout.
  static VecD8 loadu(const double *P) { return {_mm512_loadu_pd(P)}; }

  /// Masked unaligned load: lane k is loaded when bit k of \p Mask is set,
  /// zero otherwise. Lanes beyond the mask are never dereferenced, so the
  /// SpMM tail kernels can read a partial panel row safely.
  static VecD8 maskLoadu(const double *P, unsigned Mask) {
    return {_mm512_maskz_loadu_pd(static_cast<__mmask8>(Mask), P)};
  }

  /// Gathers Base[Idx[k]] for each of the 8 lanes.
  static VecD8 gather(const double *Base, VecI8 Idx) {
    return {_mm512_i32gather_pd(Idx.Reg, Base, 8)};
  }

  /// Stores 8 doubles to 64-byte aligned memory.
  void storeAligned(double *P) const { _mm512_store_pd(P, Reg); }

  /// Stores 8 doubles to unaligned memory.
  void storeu(double *P) const { _mm512_storeu_pd(P, Reg); }

  /// Masked unaligned store: lane k is written when bit k of \p Mask is
  /// set; other destinations are untouched.
  void maskStoreu(double *P, unsigned Mask) const {
    _mm512_mask_storeu_pd(P, static_cast<__mmask8>(Mask), Reg);
  }

  /// this + A * B, fused.
  VecD8 fmadd(VecD8 A, VecD8 B) const {
    return {_mm512_fmadd_pd(A.Reg, B.Reg, Reg)};
  }

  VecD8 add(VecD8 O) const { return {_mm512_add_pd(Reg, O.Reg)}; }

  VecD8 mul(VecD8 O) const { return {_mm512_mul_pd(Reg, O.Reg)}; }

  /// Sum of all 8 lanes.
  double reduceAdd() const { return _mm512_reduce_add_pd(Reg); }

  /// Spills the register to an aligned 8-double buffer (used around the
  /// scalar record-processing sections of the CVR kernel).
  void toArray(double *Buf8) const { _mm512_store_pd(Buf8, Reg); }

  /// Reloads the register from an aligned 8-double buffer.
  static VecD8 fromArray(const double *Buf8) {
    return {_mm512_load_pd(Buf8)};
  }
};

/// Four doubles: the half-width panel register the SpMM kernel blocks on
/// when the right-hand-side count is a multiple of 4 but not 8. AVX-512F
/// implies AVX2, so the 256-bit intrinsics are always available here; the
/// FMA form additionally needs __FMA__ (present under -march=native on
/// every FMA-capable host).
struct VecD4 {
  __m256d Reg;

  static VecD4 zero() { return {_mm256_setzero_pd()}; }

  static VecD4 broadcast(double V) { return {_mm256_set1_pd(V)}; }

  static VecD4 loadu(const double *P) { return {_mm256_loadu_pd(P)}; }

  void storeu(double *P) const { _mm256_storeu_pd(P, Reg); }

  /// this + A * B, fused when the target has FMA.
  VecD4 fmadd(VecD4 A, VecD4 B) const {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(A.Reg, B.Reg, Reg)};
#else
    return {_mm256_add_pd(Reg, _mm256_mul_pd(A.Reg, B.Reg))};
#endif
  }

  VecD4 add(VecD4 O) const { return {_mm256_add_pd(Reg, O.Reg)}; }

  /// Spills the register to a 4-double buffer.
  void toArray(double *Buf4) const { _mm256_storeu_pd(Buf4, Reg); }

  static VecD4 fromArray(const double *Buf4) {
    return {_mm256_loadu_pd(Buf4)};
  }
};

#else // scalar fallback with identical semantics

struct VecI8 {
  std::int32_t Lane[8];
};

struct VecI16 {
  std::int32_t Lane[16];

  static VecI16 loadAligned(const std::int32_t *P) {
    VecI16 V;
    std::memcpy(V.Lane, P, sizeof(V.Lane));
    return V;
  }

  static VecI16 loadU16Widen(const std::uint16_t *P, std::int32_t Base) {
    VecI16 V;
    for (int K = 0; K < 16; ++K)
      V.Lane[K] = Base + static_cast<std::int32_t>(P[K]);
    return V;
  }

  VecI8 lo() const {
    VecI8 V;
    std::memcpy(V.Lane, Lane, sizeof(V.Lane));
    return V;
  }

  VecI8 hi() const {
    VecI8 V;
    std::memcpy(V.Lane, Lane + 8, sizeof(V.Lane));
    return V;
  }
};

struct VecD8 {
  double Lane[8];

  static VecD8 zero() {
    VecD8 V{};
    return V;
  }

  static VecD8 broadcast(double X) {
    VecD8 V;
    for (double &L : V.Lane)
      L = X;
    return V;
  }

  static VecD8 loadAligned(const double *P) {
    VecD8 V;
    std::memcpy(V.Lane, P, sizeof(V.Lane));
    return V;
  }

  static VecD8 loadF32Widen(const float *P) {
    VecD8 V;
    for (int K = 0; K < 8; ++K)
      V.Lane[K] = static_cast<double>(P[K]);
    return V;
  }

  static VecD8 loadu(const double *P) { return loadAligned(P); }

  static VecD8 maskLoadu(const double *P, unsigned Mask) {
    VecD8 V{};
    for (int K = 0; K < 8; ++K)
      if (Mask & (1U << K))
        V.Lane[K] = P[K];
    return V;
  }

  static VecD8 gather(const double *Base, VecI8 Idx) {
    VecD8 V;
    for (int K = 0; K < 8; ++K)
      V.Lane[K] = Base[Idx.Lane[K]];
    return V;
  }

  void storeAligned(double *P) const { std::memcpy(P, Lane, sizeof(Lane)); }

  void storeu(double *P) const { storeAligned(P); }

  void maskStoreu(double *P, unsigned Mask) const {
    for (int K = 0; K < 8; ++K)
      if (Mask & (1U << K))
        P[K] = Lane[K];
  }

  VecD8 fmadd(VecD8 A, VecD8 B) const {
    VecD8 V;
    for (int K = 0; K < 8; ++K)
      V.Lane[K] = Lane[K] + A.Lane[K] * B.Lane[K];
    return V;
  }

  VecD8 add(VecD8 O) const {
    VecD8 V;
    for (int K = 0; K < 8; ++K)
      V.Lane[K] = Lane[K] + O.Lane[K];
    return V;
  }

  VecD8 mul(VecD8 O) const {
    VecD8 V;
    for (int K = 0; K < 8; ++K)
      V.Lane[K] = Lane[K] * O.Lane[K];
    return V;
  }

  double reduceAdd() const {
    double S = 0.0;
    for (double L : Lane)
      S += L;
    return S;
  }

  void toArray(double *Buf8) const { std::memcpy(Buf8, Lane, sizeof(Lane)); }

  static VecD8 fromArray(const double *Buf8) { return loadAligned(Buf8); }
};

struct VecD4 {
  double Lane[4];

  static VecD4 zero() {
    VecD4 V{};
    return V;
  }

  static VecD4 broadcast(double X) {
    VecD4 V;
    for (double &L : V.Lane)
      L = X;
    return V;
  }

  static VecD4 loadu(const double *P) {
    VecD4 V;
    std::memcpy(V.Lane, P, sizeof(V.Lane));
    return V;
  }

  void storeu(double *P) const { std::memcpy(P, Lane, sizeof(Lane)); }

  VecD4 fmadd(VecD4 A, VecD4 B) const {
    VecD4 V;
    for (int K = 0; K < 4; ++K)
      V.Lane[K] = Lane[K] + A.Lane[K] * B.Lane[K];
    return V;
  }

  VecD4 add(VecD4 O) const {
    VecD4 V;
    for (int K = 0; K < 4; ++K)
      V.Lane[K] = Lane[K] + O.Lane[K];
    return V;
  }

  void toArray(double *Buf4) const { std::memcpy(Buf4, Lane, sizeof(Lane)); }

  static VecD4 fromArray(const double *Buf4) { return loadu(Buf4); }
};

#endif // CVR_SIMD_AVX512

/// True when this build uses real AVX-512 intrinsics.
inline constexpr bool hasAvx512() { return CVR_SIMD_AVX512 != 0; }

} // namespace simd
} // namespace cvr

#endif // CVR_SIMD_SIMD_H
