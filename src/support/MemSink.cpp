//===- support/MemSink.cpp - Virtual anchor for the trace sink ------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/MemSink.h"

namespace cvr {

MemAccessSink::~MemAccessSink() = default;

} // namespace cvr
