//===- support/PrefixSum.h - Exclusive prefix sums --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exclusive prefix-sum helpers used when building CSR row pointers and the
/// per-slice offsets of the blocked formats (ESB, CSR5, VHCC).
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_PREFIXSUM_H
#define CVR_SUPPORT_PREFIXSUM_H

#include <cassert>
#include <cstddef>

namespace cvr {

/// In-place exclusive prefix sum over \p Xs[0..N]: on return Xs[i] holds the
/// sum of the original Xs[0..i-1] and Xs[N] the grand total. The buffer must
/// have N+1 elements with Xs[N] ignored on input.
template <typename T> void exclusivePrefixSum(T *Xs, std::size_t N) {
  assert(Xs && "null buffer");
  T Running = 0;
  for (std::size_t I = 0; I < N; ++I) {
    T V = Xs[I];
    Xs[I] = Running;
    Running += V;
  }
  Xs[N] = Running;
}

/// Out-of-place exclusive prefix sum: Out[i] = sum of In[0..i-1], and
/// Out[N] = total. \p Out must have room for N+1 elements.
template <typename T>
void exclusivePrefixSum(const T *In, T *Out, std::size_t N) {
  T Running = 0;
  for (std::size_t I = 0; I < N; ++I) {
    Out[I] = Running;
    Running += In[I];
  }
  Out[N] = Running;
}

} // namespace cvr

#endif // CVR_SUPPORT_PREFIXSUM_H
