//===- support/FailPoint.h - Fault-injection sites --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault-injection sites threaded through the failure-prone layers
/// (allocation, Matrix Market parsing, blob serialization, the autotuner).
/// A site is a `CVR_FAIL_POINT("name")` check that normally costs one
/// relaxed atomic load; arming it — via the API or the `CVR_FAILPOINTS`
/// environment variable — makes the surrounding code take its failure path
/// as if the real fault had happened, so the Status plumbing and the
/// registry's degradation ladder can be exercised deterministically in
/// tests and CI.
///
/// Spec syntax (environment variable and armFromSpec):
///
///   CVR_FAILPOINTS="site[=count[@skip]][;site...]"
///
///   * `count`  fire this many times, then disarm (default: every hit);
///   * `skip`   let this many hits pass before the first firing.
///
/// Example: `CVR_FAILPOINTS="alloc.aligned-buffer=1@2;tune.timeout"` fails
/// the third allocation once and every autotune probe.
///
/// Compile-time gate: building with -DCVR_FAILPOINTS_ENABLED=0 (cmake
/// option CVR_FAILPOINTS=OFF) compiles every site down to `false` with no
/// atomic load, for builds that must not carry the hooks.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_FAILPOINT_H
#define CVR_SUPPORT_FAILPOINT_H

#include "support/Status.h"

#include <cstddef>
#include <string>
#include <vector>

#ifndef CVR_FAILPOINTS_ENABLED
#define CVR_FAILPOINTS_ENABLED 1
#endif

namespace cvr {
namespace failpoint {

/// True when the site should take its failure path on this hit. Consumes
/// one firing of a counted arm. Thread-safe; never fires when nothing is
/// armed (fast path: one relaxed atomic load).
bool shouldFail(const char *Name);

/// Arms \p Name. \p Count < 0 fires on every hit; otherwise fires \p Count
/// times then disarms. The first \p SkipFirst hits pass through unharmed.
void arm(const std::string &Name, int Count = -1, int SkipFirst = 0);

/// Disarms one site / every site (test teardown).
void disarm(const std::string &Name);
void disarmAll();

/// Parses and arms a `site[=count[@skip]][;site...]` spec (also accepts
/// ',' as separator). Unknown site names are accepted — the catalog is
/// advisory — but malformed counts are an InvalidArgument error. The spec
/// is validated in full before any site is armed, so an error means
/// nothing changed.
[[nodiscard]] Status armFromSpec(const std::string &Spec);

/// Outcome of parsing the CVR_FAILPOINTS environment variable (forces the
/// one-time parse if it has not happened yet). A malformed env spec arms
/// nothing and surfaces here as INVALID_ARGUMENT; long-running tools check
/// this at startup and refuse to run a drill with a silently empty fault
/// set.
[[nodiscard]] Status envSpecStatus();

/// Total hits (fired or not) a site has seen since process start.
long hitCount(const std::string &Name);

/// Names currently armed, sorted.
std::vector<std::string> armedSites();

/// One documented site.
struct SiteInfo {
  const char *Name;
  const char *Effect;
};

/// The sites this codebase defines, for `cvr_tool inject --list` and docs.
const std::vector<SiteInfo> &catalog();

/// Flips one bit of \p Data (deterministically: bit 0 of the middle byte)
/// when the site fires; used to inject payload corruption that integrity
/// checks must catch. No-op on empty buffers or unarmed sites.
void corrupt(const char *Name, void *Data, std::size_t Bytes);

} // namespace failpoint
} // namespace cvr

#if CVR_FAILPOINTS_ENABLED
#define CVR_FAIL_POINT(NAME) (::cvr::failpoint::shouldFail(NAME))
#define CVR_FAIL_POINT_CORRUPT(NAME, DATA, BYTES)                              \
  (::cvr::failpoint::corrupt(NAME, DATA, BYTES))
#else
#define CVR_FAIL_POINT(NAME) (false)
#define CVR_FAIL_POINT_CORRUPT(NAME, DATA, BYTES) ((void)0)
#endif

#endif // CVR_SUPPORT_FAILPOINT_H
