//===- support/Stats.cpp - Summary statistics -----------------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cvr {

double mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double median(std::vector<double> Xs) {
  if (Xs.empty())
    return 0.0;
  std::size_t Mid = Xs.size() / 2;
  std::nth_element(Xs.begin(), Xs.begin() + Mid, Xs.end());
  double Hi = Xs[Mid];
  if (Xs.size() % 2 == 1)
    return Hi;
  double Lo = *std::max_element(Xs.begin(), Xs.begin() + Mid);
  return 0.5 * (Lo + Hi);
}

double geomean(const std::vector<double> &Xs) {
  double LogSum = 0.0;
  std::size_t N = 0;
  for (double X : Xs) {
    if (X <= 0.0 || !std::isfinite(X))
      continue;
    LogSum += std::log(X);
    ++N;
  }
  if (N == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(N));
}

double minOf(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  return *std::min_element(Xs.begin(), Xs.end());
}

double maxOf(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  return *std::max_element(Xs.begin(), Xs.end());
}

double stddev(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0.0;
  double M = mean(Xs);
  double Acc = 0.0;
  for (double X : Xs)
    Acc += (X - M) * (X - M);
  return std::sqrt(Acc / static_cast<double>(Xs.size()));
}

double medianWithInfinities(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  std::vector<double> Finite;
  Finite.reserve(Xs.size());
  for (double X : Xs)
    if (std::isfinite(X))
      Finite.push_back(X);
  // Infinite entries sort above every finite one, so the overall median is
  // the k-th smallest finite value with k chosen over the full sample size;
  // if that position falls into the infinite block, the median is infinite.
  std::size_t Mid = Xs.size() / 2;
  if (Mid >= Finite.size())
    return std::numeric_limits<double>::infinity();
  std::nth_element(Finite.begin(), Finite.begin() + Mid, Finite.end());
  double Hi = Finite[Mid];
  if (Xs.size() % 2 == 1)
    return Hi;
  double Lo = *std::max_element(Finite.begin(), Finite.begin() + Mid);
  return 0.5 * (Lo + Hi);
}

} // namespace cvr
