//===- support/Status.h - Recoverable error model ---------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project-wide recoverable error model: a `Status` carries a coarse
/// machine-readable code plus a human-readable message, and `StatusOr<T>`
/// is either a value or a non-OK Status. Failure paths that used to throw
/// (`AlignedBuffer`), return bool-plus-string (`MatrixMarket`), or silently
/// trust their input (`CvrSerialize`) all report through this type, so a
/// production caller can degrade instead of dying.
///
/// Conventions:
///  * functions that can fail return `Status` or `StatusOr<T>`; `ok()` is
///    the success test;
///  * messages name the failing site first ("readBinary: ...") so a
///    degradation ladder can log them verbatim;
///  * codes follow the canonical (gRPC/absl) meanings — InvalidArgument for
///    caller bugs, DataLoss for corrupt bytes, ResourceExhausted for OOM,
///    DeadlineExceeded for blown time budgets.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_STATUS_H
#define CVR_SUPPORT_STATUS_H

#include <cassert>
#include <cstddef>
#include <new>
#include <string>
#include <utility>

namespace cvr {

/// Terminates with an allocation-failure diagnostic; the infallible
/// reserve/resize paths of AlignedBuffer land here instead of throwing
/// std::bad_alloc.
[[noreturn]] void fatalAllocFailure(std::size_t Bytes);

/// Canonical error space (subset of the absl/gRPC codes this project needs).
enum class StatusCode {
  Ok = 0,
  InvalidArgument,   ///< Caller passed something unusable.
  OutOfRange,        ///< A value escaped its documented domain.
  NotFound,          ///< Named thing (file, format, matrix) absent.
  ResourceExhausted, ///< Allocation failure; OOM is recoverable now.
  DataLoss,          ///< Bytes are corrupt (bad magic, CRC mismatch, ...).
  DeadlineExceeded,  ///< A wall-clock budget ran out.
  FailedPrecondition,///< Operation needs state the object is not in.
  Unavailable,       ///< Transient I/O failure (short read/write).
  Internal,          ///< Invariant broken; a bug, not an input problem.
};

/// Stable upper-case name ("DATA_LOSS", ...) for logs and tests.
const char *statusCodeName(StatusCode C);

/// A success/error outcome. Cheap to copy on success (empty message).
class Status {
public:
  Status() = default;
  Status(StatusCode C, std::string Msg) : Code(C), Msg(std::move(Msg)) {}

  [[nodiscard]] static Status okStatus() { return Status(); }
  [[nodiscard]] static Status invalidArgument(std::string M) {
    return Status(StatusCode::InvalidArgument, std::move(M));
  }
  [[nodiscard]] static Status outOfRange(std::string M) {
    return Status(StatusCode::OutOfRange, std::move(M));
  }
  [[nodiscard]] static Status notFound(std::string M) {
    return Status(StatusCode::NotFound, std::move(M));
  }
  [[nodiscard]] static Status resourceExhausted(std::string M) {
    return Status(StatusCode::ResourceExhausted, std::move(M));
  }
  [[nodiscard]] static Status dataLoss(std::string M) {
    return Status(StatusCode::DataLoss, std::move(M));
  }
  [[nodiscard]] static Status deadlineExceeded(std::string M) {
    return Status(StatusCode::DeadlineExceeded, std::move(M));
  }
  [[nodiscard]] static Status failedPrecondition(std::string M) {
    return Status(StatusCode::FailedPrecondition, std::move(M));
  }
  [[nodiscard]] static Status unavailable(std::string M) {
    return Status(StatusCode::Unavailable, std::move(M));
  }
  [[nodiscard]] static Status internal(std::string M) {
    return Status(StatusCode::Internal, std::move(M));
  }

  bool ok() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// "DATA_LOSS: section crc mismatch" (or "OK").
  std::string toString() const;

  /// Returns a copy with "\p Context: " prepended to the message (no-op on
  /// OK), for layering call-site detail as an error propagates up.
  [[nodiscard]] Status withContext(const std::string &Context) const {
    if (ok())
      return *this;
    return Status(Code, Context + ": " + Msg);
  }

  bool operator==(const Status &O) const {
    return Code == O.Code && Msg == O.Msg;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Msg;
};

/// Either a T or a non-OK Status. The value is only accessible when ok().
template <typename T> class StatusOr {
public:
  /// Implicit from a value: `return SomeT;`.
  StatusOr(T V) : St(Status::okStatus()) { new (&Storage) T(std::move(V)); }

  /// Implicit from a non-OK Status: `return Status::dataLoss(...)`.
  StatusOr(Status S) : St(std::move(S)) {
    assert(!St.ok() && "StatusOr constructed from OK status without a value");
    if (St.ok()) // Release-mode safety net: never an OK StatusOr sans value.
      St = Status::internal("StatusOr constructed from OK status");
  }

  StatusOr(StatusOr &&O) noexcept : St(std::move(O.St)) {
    if (St.ok())
      new (&Storage) T(std::move(O.valueRef()));
  }

  StatusOr &operator=(StatusOr &&O) noexcept {
    if (this == &O)
      return *this;
    destroy();
    St = std::move(O.St);
    if (St.ok())
      new (&Storage) T(std::move(O.valueRef()));
    return *this;
  }

  StatusOr(const StatusOr &O) : St(O.St) {
    if (St.ok())
      new (&Storage) T(O.valueRef());
  }

  StatusOr &operator=(const StatusOr &O) {
    if (this == &O)
      return *this;
    destroy();
    St = O.St;
    if (St.ok())
      new (&Storage) T(O.valueRef());
    return *this;
  }

  ~StatusOr() { destroy(); }

  bool ok() const { return St.ok(); }
  const Status &status() const { return St; }

  T &value() {
    assert(ok() && "value() on an errored StatusOr");
    return valueRef();
  }
  const T &value() const {
    assert(ok() && "value() on an errored StatusOr");
    return valueRef();
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  T &valueRef() { return *reinterpret_cast<T *>(&Storage); }
  const T &valueRef() const { return *reinterpret_cast<const T *>(&Storage); }

  void destroy() {
    if (St.ok())
      valueRef().~T();
  }

  Status St;
  alignas(T) unsigned char Storage[sizeof(T)];
};

} // namespace cvr

#endif // CVR_SUPPORT_STATUS_H
