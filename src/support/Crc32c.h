//===- support/Crc32c.h - CRC-32C (Castagnoli) checksum ---------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) — the checksum
/// iSCSI, ext4, and most storage formats use for payload integrity. The
/// serialized CVR blob (format v3) carries one per section so corruption is
/// detected before a corrupt count or offset can reach a kernel. Software
/// table implementation: serialization is cold next to SpMV, so portability
/// beats the SSE4.2 instruction here.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_CRC32C_H
#define CVR_SUPPORT_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace cvr {

/// CRC-32C of \p Bytes, seeded with \p Seed (pass the previous call's
/// result to checksum discontiguous pieces as one stream; 0 to start).
std::uint32_t crc32c(const void *Data, std::size_t Bytes,
                     std::uint32_t Seed = 0);

} // namespace cvr

#endif // CVR_SUPPORT_CRC32C_H
