//===- support/FailPoint.cpp - Fault-injection sites ----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace cvr {
namespace failpoint {

namespace {

struct Site {
  int Remaining = -1; ///< Firings left; -1 = unlimited. 0 = disarmed.
  int Skip = 0;       ///< Hits to let pass before firing.
  long Hits = 0;      ///< Total hits observed (fired or not).
};

struct Registry {
  std::mutex M;
  std::unordered_map<std::string, Site> Sites;
  /// Armed-site count mirrored outside the lock so unarmed builds pay one
  /// relaxed load per site hit, nothing more.
  std::atomic<int> ArmedCount{0};

  static Registry &instance() {
    static Registry R;
    return R;
  }

  /// Recounts armed sites; call with M held.
  void refreshArmedCount() {
    int N = 0;
    for (const auto &KV : Sites)
      if (KV.second.Remaining != 0)
        ++N;
    ArmedCount.store(N, std::memory_order_relaxed);
  }
};

/// Outcome of the one-time CVR_FAILPOINTS environment parse. Read through
/// envSpecStatus(); a malformed spec arms nothing (armFromSpec validates
/// the whole spec before arming), and tools refuse to start on it rather
/// than running a drill with silently missing faults.
Status &envStatusSlot() {
  static Status S = Status::okStatus();
  return S;
}

void loadEnvOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    if (const char *Spec = std::getenv("CVR_FAILPOINTS"))
      envStatusSlot() = armFromSpec(Spec).withContext("CVR_FAILPOINTS");
  });
}

} // namespace

bool shouldFail(const char *Name) {
#if !CVR_FAILPOINTS_ENABLED
  (void)Name;
  return false;
#else
  loadEnvOnce();
  Registry &R = Registry::instance();
  if (R.ArmedCount.load(std::memory_order_relaxed) == 0)
    return false;
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Sites.find(Name);
  if (It == R.Sites.end())
    return false;
  Site &S = It->second;
  ++S.Hits;
  if (S.Remaining == 0)
    return false;
  if (S.Skip > 0) {
    --S.Skip;
    return false;
  }
  if (S.Remaining > 0 && --S.Remaining == 0)
    R.refreshArmedCount();
  return true;
#endif
}

void arm(const std::string &Name, int Count, int SkipFirst) {
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.M);
  Site &S = R.Sites[Name];
  S.Remaining = Count == 0 ? -1 : Count; // count 0 would be a silent no-op.
  S.Skip = SkipFirst;
  R.refreshArmedCount();
}

void disarm(const std::string &Name) {
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Sites.find(Name);
  if (It != R.Sites.end())
    It->second.Remaining = 0;
  R.refreshArmedCount();
}

void disarmAll() {
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.M);
  for (auto &KV : R.Sites)
    KV.second.Remaining = 0;
  R.refreshArmedCount();
}

Status armFromSpec(const std::string &Spec) {
  // Two-phase: parse and validate every item first, then arm. A malformed
  // spec therefore arms nothing — a drill either runs exactly as written
  // or refuses to run, never a partial fault set.
  struct ParsedArm {
    std::string Name;
    int Count;
    int Skip;
  };
  std::vector<ParsedArm> Arms;

  std::size_t I = 0;
  while (I < Spec.size()) {
    std::size_t End = Spec.find_first_of(";,", I);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(I, End - I);
    I = End + 1;
    // Trim surrounding spaces.
    std::size_t B = Item.find_first_not_of(" \t");
    std::size_t E = Item.find_last_not_of(" \t");
    if (B == std::string::npos)
      continue;
    Item = Item.substr(B, E - B + 1);

    std::string Name = Item;
    int Count = -1, Skip = 0;
    std::size_t Eq = Item.find('=');
    if (Eq != std::string::npos) {
      Name = Item.substr(0, Eq);
      std::string CountStr = Item.substr(Eq + 1);
      std::size_t At = CountStr.find('@');
      std::string SkipStr;
      if (At != std::string::npos) {
        SkipStr = CountStr.substr(At + 1);
        CountStr = CountStr.substr(0, At);
      }
      char *Rest = nullptr;
      Count = static_cast<int>(std::strtol(CountStr.c_str(), &Rest, 10));
      if (CountStr.empty() || *Rest != '\0' || Count < 0)
        return Status::invalidArgument("fail-point spec '" + Item +
                                       "': bad count '" + CountStr + "'");
      if (!SkipStr.empty()) {
        Skip = static_cast<int>(std::strtol(SkipStr.c_str(), &Rest, 10));
        if (*Rest != '\0' || Skip < 0)
          return Status::invalidArgument("fail-point spec '" + Item +
                                         "': bad skip '" + SkipStr + "'");
      }
    }
    if (Name.empty())
      return Status::invalidArgument("fail-point spec '" + Item +
                                     "': empty site name");
    Arms.push_back({std::move(Name), Count, Skip});
  }
  for (const ParsedArm &A : Arms)
    arm(A.Name, A.Count, A.Skip);
  return Status::okStatus();
}

Status envSpecStatus() {
  loadEnvOnce();
  return envStatusSlot();
}

long hitCount(const std::string &Name) {
  Registry &R = Registry::instance();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Sites.find(Name);
  return It == R.Sites.end() ? 0 : It->second.Hits;
}

std::vector<std::string> armedSites() {
  Registry &R = Registry::instance();
  std::vector<std::string> Names;
  {
    std::lock_guard<std::mutex> Lock(R.M);
    for (const auto &KV : R.Sites)
      if (KV.second.Remaining != 0)
        Names.push_back(KV.first);
  }
  std::sort(Names.begin(), Names.end());
  return Names;
}

const std::vector<SiteInfo> &catalog() {
  static const std::vector<SiteInfo> Sites = {
      {"alloc.aligned-buffer",
       "AlignedBuffer allocation returns nullptr (recoverable OOM)"},
      {"io.mm.short-read",
       "Matrix Market reader hits end-of-stream mid-parse"},
      {"serialize.write.short", "blob writer stops mid-write (short write)"},
      {"serialize.read.short", "blob reader sees a truncated stream"},
      {"serialize.read.bitflip",
       "one bit of a blob section flips after read (CRC must catch it)"},
      {"convert.cvr.fail",
       "CVR conversion reports an internal failure (pathological input)"},
      {"tune.timeout",
       "an autotuner probe burns the whole wall-clock budget (hung probe)"},
      {"obs.perf.open",
       "perf_event_open is refused (locked-down container / no PMU)"},
      {"serve.mmap",
       "mmap of a serving blob fails transiently (busy file / exhausted "
       "maps); the fleet loader retries with backoff, then falls back to a "
       "stream read"},
      {"serve.accept",
       "accept() on the serving socket fails transiently; the listener "
       "backs off and keeps serving instead of exiting"},
      {"serve.queue_full",
       "admission control sees no capacity; the request is shed with "
       "RESOURCE_EXHAUSTED instead of queuing unboundedly"},
      {"serve.deadline",
       "a request deadline reads as already expired at the next phase "
       "boundary; the pipeline degrades (skip tuning -> plain CVR) or "
       "answers DEADLINE_EXCEEDED"},
  };
  return Sites;
}

void corrupt(const char *Name, void *Data, std::size_t Bytes) {
  if (Bytes == 0 || Data == nullptr)
    return;
  if (!shouldFail(Name))
    return;
  static_cast<unsigned char *>(Data)[Bytes / 2] ^= 0x01;
}

} // namespace failpoint
} // namespace cvr
