//===- support/ParallelFor.cpp - TSan trampoline for OpenMP regions -------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ParallelFor.h"

#if defined(__SANITIZE_THREAD__)

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cvr {
namespace detail {

std::atomic<TsanBody> TsanFn{nullptr};
std::atomic<void *> TsanCtx{nullptr};
std::atomic<int> TsanTotal{0};
std::mutex TsanMutex;

void tsanParallelRun(int NumThreads) {
  // This region must capture nothing: any shared local would make GCC spill
  // an argument struct onto the master's stack, and workers reading it is
  // exactly the false race this file exists to avoid. num_threads() is
  // passed to the runtime by value, and everything else arrives through
  // the atomics (whose loads give each worker the acquire edge).
#pragma omp parallel num_threads(NumThreads)
  {
#ifdef _OPENMP
    int Team = omp_get_num_threads();
    int Id = omp_get_thread_num();
#else
    int Team = 1;
    int Id = 0;
#endif
    TsanBody Fn = TsanFn.load();
    void *Ctx = TsanCtx.load();
    int Total = TsanTotal.load();
    for (int T = Id; T < Total; T += Team)
      Fn(Ctx, T);
    tsanOmpWorkerEnd(&TsanFn);
  }
}

} // namespace detail
} // namespace cvr

#endif // __SANITIZE_THREAD__
