//===- support/Table.h - Plain-text table rendering -------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text tables. Every bench binary in this project
/// emits one table per paper table/figure; TextTable keeps the output
/// readable and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_TABLE_H
#define CVR_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace cvr {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
public:
  /// Sets the header row. Implicitly defines the column count; rows with
  /// more cells extend the table, shorter rows are padded with blanks.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders with two-space column gaps; numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  void print(std::ostream &OS) const;

  /// Renders as comma-separated values (no alignment, no separators).
  void printCsv(std::ostream &OS) const;

  /// Formats a double with \p Digits digits after the point; infinities
  /// render as "inf".
  static std::string fmt(double V, int Digits = 2);

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  static bool looksNumeric(const std::string &S);

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace cvr

#endif // CVR_SUPPORT_TABLE_H
