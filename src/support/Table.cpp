//===- support/Table.cpp - Plain-text table rendering ---------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace cvr {

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*Separator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*Separator=*/true}); }

std::string TextTable::fmt(double V, int Digits) {
  if (std::isinf(V))
    return V > 0 ? "inf" : "-inf";
  if (std::isnan(V))
    return "nan";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

bool TextTable::looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  bool SawDigit = false;
  for (char C : S) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == 'e' || C == 'E' || C == 'x' ||
        C == '%')
      continue;
    if (S == "inf" || S == "-inf" || S == "nan")
      return true;
    return false;
  }
  return SawDigit;
}

void TextTable::print(std::ostream &OS) const {
  std::size_t Cols = Header.size();
  for (const Row &R : Rows)
    Cols = std::max(Cols, R.Cells.size());

  std::vector<std::size_t> Width(Cols, 0);
  auto Measure = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cells.size(); ++I)
      Width[I] = std::max(Width[I], Cells[I].size());
  };
  Measure(Header);
  for (const Row &R : Rows)
    if (!R.Separator)
      Measure(R.Cells);

  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cols; ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      std::size_t Pad = Width[I] - Cell.size();
      // Right-align numbers so magnitude comparisons read naturally.
      if (looksNumeric(Cell))
        OS << std::string(Pad, ' ') << Cell;
      else
        OS << Cell << std::string(Pad, ' ');
      if (I + 1 != Cols)
        OS << "  ";
    }
    OS << '\n';
  };

  std::size_t Total = 0;
  for (std::size_t W : Width)
    Total += W;
  Total += Cols >= 1 ? (Cols - 1) * 2 : 0;

  if (!Header.empty()) {
    Emit(Header);
    OS << std::string(Total, '-') << '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator)
      OS << std::string(Total, '-') << '\n';
    else
      Emit(R.Cells);
  }
}

void TextTable::printCsv(std::ostream &OS) const {
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (std::size_t I = 0; I < Cells.size(); ++I) {
      if (I != 0)
        OS << ',';
      OS << Cells[I];
    }
    OS << '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const Row &R : Rows)
    if (!R.Separator)
      Emit(R.Cells);
}

} // namespace cvr
