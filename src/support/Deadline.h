//===- support/Deadline.h - Injectable-clock deadlines + backoff -*- C++-*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-request time budgets for the serving layer (src/serve), built on an
/// injectable clock so every expiry path is unit-testable without sleeps:
///
///  * `Clock` is the one-method time source. `steadyClock()` wraps
///    std::chrono::steady_clock for production; `ManualClock` is a test
///    clock advanced explicitly, so "the tuner blew the budget" is a
///    single `advance()` call rather than a real 50 ms stall.
///  * `Deadline` is a point on a Clock. It is checked — never waited on —
///    at the serving pipeline's phase boundaries (admit, prepare, tune,
///    execute); an expired deadline makes the phase degrade or return
///    DEADLINE_EXCEEDED instead of blocking.
///  * `BackoffPolicy` is the bounded capped-exponential retry schedule
///    used for transient faults (mmap of a busy file, EINTR-adjacent
///    accept failures). Deterministic: no jitter, so tests can assert the
///    exact delay sequence.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_DEADLINE_H
#define CVR_SUPPORT_DEADLINE_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace cvr {

/// Monotonic time source. One virtual call per read keeps it injectable;
/// deadline checks happen at phase boundaries, never inside kernels, so
/// the indirection costs nothing measurable.
class Clock {
public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed origin; monotone non-decreasing.
  virtual std::int64_t nowNanos() const = 0;
};

/// The process-wide std::chrono::steady_clock adapter.
const Clock &steadyClock();

/// Test clock: starts at zero, moves only when told to.
class ManualClock : public Clock {
public:
  std::int64_t nowNanos() const override { return Now; }

  void advanceNanos(std::int64_t N) { Now += N; }
  void advanceMicros(std::int64_t U) { Now += U * 1000; }
  void advanceMillis(std::int64_t M) { Now += M * 1000 * 1000; }

private:
  std::int64_t Now = 0;
};

/// A point in time on a Clock, or "never". Cheap to copy; carries its
/// clock so a request's deadline travels with the request object.
class Deadline {
public:
  /// Never expires (the default for requests that set no budget).
  Deadline() = default;

  /// Expires \p BudgetNanos from now on \p C.
  static Deadline afterNanos(const Clock &C, std::int64_t BudgetNanos) {
    Deadline D;
    D.Src = &C;
    D.ExpiryNanos = C.nowNanos() + BudgetNanos;
    return D;
  }

  static Deadline afterMicros(const Clock &C, std::int64_t Micros) {
    return afterNanos(C, Micros * 1000);
  }

  static Deadline never() { return Deadline(); }

  bool isNever() const { return Src == nullptr; }

  bool expired() const { return Src && Src->nowNanos() >= ExpiryNanos; }

  /// Nanoseconds until expiry (<= 0 when expired). A "never" deadline
  /// reports the int64 maximum.
  std::int64_t remainingNanos() const;

  double remainingSeconds() const {
    return static_cast<double>(remainingNanos()) * 1e-9;
  }

  /// Phase-boundary check: OK while time remains, DEADLINE_EXCEEDED naming
  /// \p Phase once it has run out. The serving layer calls this between
  /// phases (never inside one), so a request that expires mid-execution
  /// still returns its finished result.
  [[nodiscard]] Status check(const char *Phase) const;

private:
  const Clock *Src = nullptr; ///< nullptr = never expires.
  std::int64_t ExpiryNanos = 0;
};

/// Bounded capped-exponential retry schedule. Attempt numbering is
/// zero-based: delayMicros(0) is the wait before the first retry.
struct BackoffPolicy {
  std::int64_t InitialMicros = 200;  ///< Delay before the first retry.
  std::int64_t MaxMicros = 50000;    ///< Per-retry delay ceiling.
  int Multiplier = 2;                ///< Growth factor between retries.
  int MaxRetries = 5;                ///< Retries after the initial attempt.

  /// Delay before retry \p Attempt (zero-based), capped at MaxMicros;
  /// negative once Attempt >= MaxRetries (meaning: stop retrying).
  std::int64_t delayMicros(int Attempt) const;

  /// True while retry \p Attempt is within budget AND \p D (when given)
  /// still has at least that retry's delay remaining — a deadline-aware
  /// retry never sleeps past the request's own expiry.
  bool shouldRetry(int Attempt, const Deadline &D = Deadline::never()) const;
};

} // namespace cvr

#endif // CVR_SUPPORT_DEADLINE_H
