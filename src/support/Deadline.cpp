//===- support/Deadline.cpp - Injectable-clock deadlines + backoff --------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"

#include <chrono>
#include <limits>

namespace cvr {

namespace {

class SteadyClock : public Clock {
public:
  std::int64_t nowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

} // namespace

const Clock &steadyClock() {
  static const SteadyClock C;
  return C;
}

std::int64_t Deadline::remainingNanos() const {
  if (!Src)
    return std::numeric_limits<std::int64_t>::max();
  return ExpiryNanos - Src->nowNanos();
}

Status Deadline::check(const char *Phase) const {
  if (!expired())
    return Status::okStatus();
  return Status::deadlineExceeded(std::string(Phase) +
                                  ": request deadline expired");
}

std::int64_t BackoffPolicy::delayMicros(int Attempt) const {
  if (Attempt < 0 || Attempt >= MaxRetries)
    return -1;
  std::int64_t D = InitialMicros;
  for (int I = 0; I < Attempt; ++I) {
    if (D > MaxMicros / (Multiplier > 0 ? Multiplier : 1))
      return MaxMicros; // Saturated; further growth would overflow anyway.
    D *= Multiplier;
  }
  return D < MaxMicros ? D : MaxMicros;
}

bool BackoffPolicy::shouldRetry(int Attempt, const Deadline &D) const {
  std::int64_t Delay = delayMicros(Attempt);
  if (Delay < 0)
    return false;
  return D.remainingNanos() > Delay * 1000;
}

} // namespace cvr
