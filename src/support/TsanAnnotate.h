//===- support/TsanAnnotate.h - OpenMP happens-before for TSan ----*-C++-*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GCC's libgomp is not ThreadSanitizer-instrumented, so the fork/join
/// barriers of an OpenMP parallel region are invisible to TSan and every
/// access across a region boundary reports as a false race (master writes
/// before the region vs. worker reads inside it, and vice versa). These
/// helpers restate the barrier semantics the region already guarantees:
///
///   tsanOmpFork(&Tag);          // master, immediately before the region
///   #pragma omp parallel ...
///   {
///     tsanOmpWorkerBegin(&Tag); // first statement of the region/iteration
///     ...
///     tsanOmpWorkerEnd(&Tag);   // last statement of the region/iteration
///   }
///   tsanOmpJoin(&Tag);          // master, immediately after the region
///
/// __tsan_release joins the thread's clock into the tag's sync clock and
/// __tsan_acquire joins the tag's clock into the thread, so releases from
/// all workers accumulate and the master's join sees every worker's writes.
/// Under non-TSan builds everything compiles to nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_TSANANNOTATE_H
#define CVR_SUPPORT_TSANANNOTATE_H

#if defined(__SANITIZE_THREAD__)
extern "C" {
void __tsan_acquire(void *Addr);
void __tsan_release(void *Addr);
}
#endif

namespace cvr {

#if defined(__SANITIZE_THREAD__)
inline void tsanOmpFork(const void *Tag) {
  __tsan_release(const_cast<void *>(Tag));
}
inline void tsanOmpWorkerBegin(const void *Tag) {
  __tsan_acquire(const_cast<void *>(Tag));
}
inline void tsanOmpWorkerEnd(const void *Tag) {
  __tsan_release(const_cast<void *>(Tag));
}
inline void tsanOmpJoin(const void *Tag) {
  __tsan_acquire(const_cast<void *>(Tag));
}
#else
inline void tsanOmpFork(const void *) {}
inline void tsanOmpWorkerBegin(const void *) {}
inline void tsanOmpWorkerEnd(const void *) {}
inline void tsanOmpJoin(const void *) {}
#endif

} // namespace cvr

#endif // CVR_SUPPORT_TSANANNOTATE_H
