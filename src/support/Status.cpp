//===- support/Status.cpp - Recoverable error model -----------------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

namespace cvr {

void fatalAllocFailure(std::size_t Bytes) {
  std::fprintf(stderr,
               "cvr: fatal: allocation of %zu bytes failed on an "
               "infallible path (use the tryReserve/tryResize Status API "
               "for recoverable allocation)\n",
               Bytes);
  std::abort();
}

const char *statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "OK";
  case StatusCode::InvalidArgument:
    return "INVALID_ARGUMENT";
  case StatusCode::OutOfRange:
    return "OUT_OF_RANGE";
  case StatusCode::NotFound:
    return "NOT_FOUND";
  case StatusCode::ResourceExhausted:
    return "RESOURCE_EXHAUSTED";
  case StatusCode::DataLoss:
    return "DATA_LOSS";
  case StatusCode::DeadlineExceeded:
    return "DEADLINE_EXCEEDED";
  case StatusCode::FailedPrecondition:
    return "FAILED_PRECONDITION";
  case StatusCode::Unavailable:
    return "UNAVAILABLE";
  case StatusCode::Internal:
    return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::toString() const {
  if (ok())
    return "OK";
  std::string S = statusCodeName(Code);
  if (!Msg.empty()) {
    S += ": ";
    S += Msg;
  }
  return S;
}

} // namespace cvr
