//===- support/Stats.h - Summary statistics ---------------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / median / geometric mean / min / max over samples. The paper reports
/// per-domain arithmetic means (Table 3, Figures 1 and 7) and the median
/// amortization count (Table 1); these helpers back those aggregations.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_STATS_H
#define CVR_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace cvr {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Xs);

/// Median (average of the two middle elements for even sizes); 0 for an
/// empty sample. Does not modify the input.
double median(std::vector<double> Xs);

/// Geometric mean over strictly positive samples; 0 for an empty sample.
/// Non-positive entries are skipped (they would make the product undefined).
double geomean(const std::vector<double> &Xs);

/// Smallest element; 0 for an empty sample.
double minOf(const std::vector<double> &Xs);

/// Largest element; 0 for an empty sample.
double maxOf(const std::vector<double> &Xs);

/// Population standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double> &Xs);

/// Median of only the finite entries of \p Xs (infinities model the paper's
/// "never amortizes" entries in Tables 1 and 4); +inf if more than half of
/// the entries are infinite, 0 if empty.
double medianWithInfinities(const std::vector<double> &Xs);

} // namespace cvr

#endif // CVR_SUPPORT_STATS_H
