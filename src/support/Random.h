//===- support/Random.h - Deterministic fast PRNGs --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 and Xoshiro256** pseudo-random generators. All synthetic
/// dataset generators seed from these so that every experiment in the paper
/// reproduction is bit-for-bit deterministic across runs.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_RANDOM_H
#define CVR_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace cvr {

/// SplitMix64: tiny generator used to expand a 64-bit seed into the state of
/// larger generators. Passes BigCrush when used directly as well.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

private:
  std::uint64_t State;
};

/// Xoshiro256**: the workhorse generator for all dataset synthesis.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &W : S)
      W = SM.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    std::uint64_t Result = rotl(S[1] * 5, 7) * 9;
    std::uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBounded(std::uint64_t Bound) {
    assert(Bound != 0 && "nextBounded(0) is meaningless");
    // Lemire's multiply-shift rejection method.
    std::uint64_t X = next();
    __uint128_t M = static_cast<__uint128_t>(X) * Bound;
    std::uint64_t L = static_cast<std::uint64_t>(M);
    if (L < Bound) {
      std::uint64_t Threshold = (0 - Bound) % Bound;
      while (L < Threshold) {
        X = next();
        M = static_cast<__uint128_t>(X) * Bound;
        L = static_cast<std::uint64_t>(M);
      }
    }
    return static_cast<std::uint64_t>(M >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t S[4];
};

} // namespace cvr

#endif // CVR_SUPPORT_RANDOM_H
