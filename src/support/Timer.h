//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-clock stopwatch used by the benchmark harness for preprocessing
/// and per-iteration SpMV timing.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_TIMER_H
#define CVR_SUPPORT_TIMER_H

#include <chrono>

namespace cvr {

/// Simple stopwatch over std::chrono::steady_clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace cvr

#endif // CVR_SUPPORT_TIMER_H
