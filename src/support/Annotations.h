//===- support/Annotations.h - Static-analysis annotations ------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source annotations that carry the project's performance contracts to both
/// the compiler and `cvr_lint` (tools/lint/). The annotations are real
/// attributes — they change code layout — but their primary job is to make
/// the contracts machine-checkable:
///
///   * `CVR_HOT` marks a function as part of a SIMD hot path. The contract,
///     enforced by the `lint.hot.alloc` check one call level deep: no
///     allocation (new/malloc, container growth, std::string construction),
///     no locks, no exceptions, and no telemetry or trace spans. Telemetry
///     belongs at the kernel entry point (one level above), never inside
///     the per-chunk loops; see DESIGN.md section 14.
///
///   * `CVR_COLD` marks error-handling helpers so they leave the hot
///     section. Advisory only — no lint check keys on it.
///
/// Alignment provenance (`simd::assumeAligned`) lives in simd/Simd.h next
/// to the wrappers that consume it.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_ANNOTATIONS_H
#define CVR_SUPPORT_ANNOTATIONS_H

#if defined(__GNUC__) || defined(__clang__)
#define CVR_HOT __attribute__((hot))
#define CVR_COLD __attribute__((cold))
#else
#define CVR_HOT
#define CVR_COLD
#endif

#endif // CVR_SUPPORT_ANNOTATIONS_H
