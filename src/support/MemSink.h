//===- support/MemSink.h - Memory access trace sink -------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interface through which traced SpMV kernels report the memory references
/// their real kernels would issue. The cache simulator implements it to
/// reproduce the paper's L2 miss-ratio measurements (Figures 1 and 7)
/// without hardware performance counters.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_MEMSINK_H
#define CVR_SUPPORT_MEMSINK_H

#include <cstddef>

namespace cvr {

/// Receives the byte-accurate load/store stream of a traced kernel.
class MemAccessSink {
public:
  virtual ~MemAccessSink();

  /// A load of \p Bytes bytes starting at \p P.
  virtual void read(const void *P, std::size_t Bytes) = 0;

  /// A store of \p Bytes bytes starting at \p P.
  virtual void write(const void *P, std::size_t Bytes) = 0;
};

/// Sink that just totals the traffic. The fusion benchmarks and tests use
/// it to compare the bytes an iteration moves with and without fused
/// epilogues.
class CountingSink final : public MemAccessSink {
public:
  void read(const void *, std::size_t Bytes) override {
    ReadBytes += Bytes;
    ++Reads;
  }
  void write(const void *, std::size_t Bytes) override {
    WriteBytes += Bytes;
    ++Writes;
  }

  std::size_t readBytes() const { return ReadBytes; }
  std::size_t writeBytes() const { return WriteBytes; }
  std::size_t totalBytes() const { return ReadBytes + WriteBytes; }
  std::size_t accesses() const { return Reads + Writes; }

  void reset() { ReadBytes = WriteBytes = Reads = Writes = 0; }

private:
  std::size_t ReadBytes = 0;
  std::size_t WriteBytes = 0;
  std::size_t Reads = 0;
  std::size_t Writes = 0;
};

} // namespace cvr

#endif // CVR_SUPPORT_MEMSINK_H
