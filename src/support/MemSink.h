//===- support/MemSink.h - Memory access trace sink -------------*- C++ -*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interface through which traced SpMV kernels report the memory references
/// their real kernels would issue. The cache simulator implements it to
/// reproduce the paper's L2 miss-ratio measurements (Figures 1 and 7)
/// without hardware performance counters.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_MEMSINK_H
#define CVR_SUPPORT_MEMSINK_H

#include <cstddef>

namespace cvr {

/// Receives the byte-accurate load/store stream of a traced kernel.
class MemAccessSink {
public:
  virtual ~MemAccessSink();

  /// A load of \p Bytes bytes starting at \p P.
  virtual void read(const void *P, std::size_t Bytes) = 0;

  /// A store of \p Bytes bytes starting at \p P.
  virtual void write(const void *P, std::size_t Bytes) = 0;
};

} // namespace cvr

#endif // CVR_SUPPORT_MEMSINK_H
