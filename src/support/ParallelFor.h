//===- support/ParallelFor.h - OpenMP parallel-for, TSan-compatible -*-C++-*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ompParallelFor(Total, NumThreads, Body) runs Body(0..Total-1) across an
/// OpenMP team. In normal builds it is exactly the pragma it replaces —
/// the lambda inlines into a `#pragma omp parallel for` loop.
///
/// Under ThreadSanitizer it takes a different route. GCC's libgomp is not
/// TSan-instrumented, so two things about a plain pragma are invisible to
/// TSan: the fork/join barriers, and the compiler-generated shared-argument
/// struct the master writes to its own stack for workers to read. Both
/// produce false races that no source annotation can cover (the struct
/// accesses are generated before any user statement in the region runs).
/// The TSan path therefore publishes the body through std::atomic globals
/// — real atomics TSan models, giving the master->worker happens-before
/// edge — and launches a *captureless* parallel region, so no shared stack
/// struct exists at all. The join edge back to the master is restated with
/// the TsanAnnotate helpers. Scheduling degrades to round-robin, which is
/// fine for the correctness tests a TSan build exists to run.
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_PARALLELFOR_H
#define CVR_SUPPORT_PARALLELFOR_H

#include "support/TsanAnnotate.h"

#if defined(__SANITIZE_THREAD__)
#include <atomic>
#include <mutex>
#include <type_traits>
#endif

namespace cvr {

#if defined(__SANITIZE_THREAD__)

namespace detail {
using TsanBody = void (*)(void *, int);
extern std::atomic<TsanBody> TsanFn;
extern std::atomic<void *> TsanCtx;
extern std::atomic<int> TsanTotal;
extern std::mutex TsanMutex;
/// Captureless `#pragma omp parallel` trampoline (ParallelFor.cpp).
void tsanParallelRun(int NumThreads);
} // namespace detail

template <typename F>
void ompParallelFor(int Total, int NumThreads, F &&Body) {
  // Serialized: the globals hold one dispatch at a time. TSan builds are
  // for correctness, not throughput.
  std::lock_guard<std::mutex> Lock(detail::TsanMutex);
  detail::TsanCtx.store(const_cast<void *>(
      static_cast<const void *>(&Body)));
  detail::TsanTotal.store(Total);
  detail::TsanFn.store(+[](void *Ctx, int T) {
    (*static_cast<std::remove_reference_t<F> *>(Ctx))(T);
  });
  detail::tsanParallelRun(NumThreads);
  tsanOmpJoin(&detail::TsanFn);
}

template <typename F>
void ompParallelForDynamic(int Total, int NumThreads, F &&Body) {
  ompParallelFor(Total, NumThreads, static_cast<F &&>(Body));
}

#else

template <typename F>
void ompParallelFor(int Total, int NumThreads, F &&Body) {
#pragma omp parallel for schedule(static) num_threads(NumThreads)
  for (int T = 0; T < Total; ++T)
    Body(T);
}

/// Work-stealing flavor for uneven iterations (VHCC panels).
template <typename F>
void ompParallelForDynamic(int Total, int NumThreads, F &&Body) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(NumThreads)
  for (int T = 0; T < Total; ++T)
    Body(T);
}

#endif // __SANITIZE_THREAD__

} // namespace cvr

#endif // CVR_SUPPORT_PARALLELFOR_H
