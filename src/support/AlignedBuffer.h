//===- support/AlignedBuffer.h - Cache-line aligned dynamic array -*-C++-*-===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dynamically sized array whose storage is aligned to a fixed
/// byte boundary (64 by default, matching both a cache line and the widest
/// AVX-512 vector). SpMV kernels rely on aligned loads of the value and
/// column-index streams, so every hot array in this project lives in an
/// AlignedBuffer rather than a std::vector.
///
/// Allocation never throws. The `tryReserve`/`tryResize` overloads report
/// failure (real OOM or the `alloc.aligned-buffer` fail point) as a
/// `Status`, making out-of-memory a recoverable event on the paths that
/// opt in; the classic void `reserve`/`resize` keep their infallible
/// signature and terminate with a diagnostic if storage cannot be obtained
/// (no std::bad_alloc anywhere).
///
//===----------------------------------------------------------------------===//

#ifndef CVR_SUPPORT_ALIGNEDBUFFER_H
#define CVR_SUPPORT_ALIGNEDBUFFER_H

#include "support/FailPoint.h"
#include "support/Status.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace cvr {

/// Dynamic array of trivially copyable `T` with `Alignment`-byte storage.
///
/// Unlike std::vector this never default-constructs elements on resize with
/// the `resize(n)` overload; use `resize(n, v)` or `zero()` when the contents
/// must be defined. Growth is geometric; `resize` never shrinks capacity.
template <typename T, std::size_t Alignment = 64> class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only supports trivially copyable types");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t N) { resize(N); }

  /// Non-owning view over external storage (a mmap'd blob section). The
  /// buffer aliases [P, P + N) without copying or ever freeing it; the
  /// mapping must outlive the view and, per the zero-copy contract, must
  /// never be written through it (serving maps are PROT_READ — a write
  /// faults). Views report zero capacity, so any grow operation silently
  /// converts the buffer back to owned storage by copying out first.
  /// \p P must satisfy the class alignment (the mapped blob layout
  /// guarantees it; callers verify before adopting).
  static AlignedBuffer viewExternal(const T *P, std::size_t N) {
    AlignedBuffer B;
    B.Data = const_cast<T *>(P);
    B.Size = N;
    B.Cap = 0; // Any growth reallocates into owned storage.
    B.Owned = false;
    assert((reinterpret_cast<std::uintptr_t>(P) % Alignment) == 0 &&
           "viewExternal: pointer violates the buffer alignment");
    return B;
  }

  /// True when the storage is heap-owned (false for viewExternal views).
  bool ownsStorage() const { return Owned; }

  AlignedBuffer(std::size_t N, const T &Fill) { resize(N, Fill); }

  AlignedBuffer(const AlignedBuffer &Other) {
    resize(Other.Size);
    if (Other.Size != 0)
      std::memcpy(Data, Other.Data, Other.Size * sizeof(T));
  }

  AlignedBuffer(AlignedBuffer &&Other) noexcept
      : Data(Other.Data), Size(Other.Size), Cap(Other.Cap),
        Owned(Other.Owned) {
    Other.Data = nullptr;
    Other.Size = Other.Cap = 0;
    Other.Owned = true;
  }

  AlignedBuffer &operator=(const AlignedBuffer &Other) {
    if (this == &Other)
      return *this;
    resize(Other.Size);
    if (Other.Size != 0)
      std::memcpy(Data, Other.Data, Other.Size * sizeof(T));
    return *this;
  }

  AlignedBuffer &operator=(AlignedBuffer &&Other) noexcept {
    if (this == &Other)
      return *this;
    release();
    Data = Other.Data;
    Size = Other.Size;
    Cap = Other.Cap;
    Owned = Other.Owned;
    Other.Data = nullptr;
    Other.Size = Other.Cap = 0;
    Other.Owned = true;
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T *data() { return Data; }
  const T *data() const { return Data; }

  std::size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

  T &operator[](std::size_t I) {
    assert(I < Size && "AlignedBuffer index out of range");
    return Data[I];
  }
  const T &operator[](std::size_t I) const {
    assert(I < Size && "AlignedBuffer index out of range");
    return Data[I];
  }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }

  T &back() {
    assert(Size != 0 && "back() on empty buffer");
    return Data[Size - 1];
  }

  /// Grows or shrinks the logical size; newly exposed elements are
  /// uninitialized. Terminates on allocation failure (see tryResize for
  /// the recoverable path).
  void resize(std::size_t N) {
    reserve(N);
    Size = N;
  }

  /// Grows or shrinks the logical size, filling new elements with \p Fill.
  void resize(std::size_t N, const T &Fill) {
    std::size_t Old = Size;
    resize(N);
    for (std::size_t I = Old; I < N; ++I)
      Data[I] = Fill;
  }

  void reserve(std::size_t N) {
    Status S = tryReserve(N);
    if (!S.ok())
      fatalAllocFailure(N * sizeof(T));
  }

  /// Grows storage to hold \p N elements, reporting failure instead of
  /// terminating. On error the buffer is unchanged (contents, size, and
  /// capacity intact), so a caller can degrade and retry smaller.
  [[nodiscard]] Status tryReserve(std::size_t N) {
    if (N <= Cap)
      return Status::okStatus();
    std::size_t NewCap = std::max<std::size_t>(N, Cap + Cap / 2);
    T *NewData = allocate(NewCap);
    if (!NewData)
      return Status::resourceExhausted(
          "AlignedBuffer: cannot allocate " +
          std::to_string(NewCap * sizeof(T)) + " bytes");
    if (Size != 0)
      std::memcpy(NewData, Data, Size * sizeof(T));
    if (Owned)
      std::free(Data);
    Data = NewData;
    Owned = true; // A grown view becomes an owned copy.
    Cap = NewCap; // Size is unchanged: reserve only grows storage.
    return Status::okStatus();
  }

  /// resize(N) with recoverable failure; newly exposed elements are
  /// uninitialized. On error the buffer keeps its previous size.
  [[nodiscard]] Status tryResize(std::size_t N) {
    Status S = tryReserve(N);
    if (!S.ok())
      return S;
    Size = N;
    return S;
  }

  /// resize(N, Fill) with recoverable failure.
  [[nodiscard]] Status tryResize(std::size_t N, const T &Fill) {
    std::size_t Old = Size;
    Status S = tryResize(N);
    if (!S.ok())
      return S;
    for (std::size_t I = Old; I < N; ++I)
      Data[I] = Fill;
    return S;
  }

  void push_back(const T &V) {
    reserve(Size + 1);
    Data[Size++] = V;
  }

  void clear() { Size = 0; }

  /// Sets every byte of the live range to zero.
  void zero() {
    if (Size != 0)
      std::memset(Data, 0, Size * sizeof(T));
  }

  /// Fills the live range with \p V.
  void fill(const T &V) { std::fill(Data, Data + Size, V); }

private:
  /// Allocations at least this large are 2 MB-aligned and advised into
  /// transparent huge pages: the vals/colIdx streams of a large matrix span
  /// hundreds of 4 KB pages, and the streaming kernels otherwise pay a TLB
  /// miss every 512 doubles.
  static constexpr std::size_t HugePageBytes = std::size_t(2) << 20;

  /// Nothrow: nullptr on overflow, allocation failure, or an armed
  /// `alloc.aligned-buffer` fail point.
  static T *allocate(std::size_t N) noexcept {
    if (CVR_FAIL_POINT("alloc.aligned-buffer"))
      return nullptr;
    // Reject sizes whose byte count (after alignment round-up) would
    // overflow, before they reach the allocator.
    if (N > (SIZE_MAX - HugePageBytes) / sizeof(T))
      return nullptr;
    // std::aligned_alloc requires the total size to be a multiple of the
    // alignment; round up.
    std::size_t Bytes = N * sizeof(T);
    std::size_t Align = Alignment;
    if (Bytes >= HugePageBytes)
      Align = std::max<std::size_t>(Align, HugePageBytes);
    Bytes = (Bytes + Align - 1) / Align * Align;
    void *P = std::aligned_alloc(Align, Bytes);
    if (!P)
      return nullptr;
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (Align >= HugePageBytes)
      (void)madvise(P, Bytes, MADV_HUGEPAGE); // Advisory; failure is fine.
#endif
    return static_cast<T *>(P);
  }

  void release() {
    if (Owned)
      std::free(Data);
    Data = nullptr;
    Size = Cap = 0;
    Owned = true;
  }

  T *Data = nullptr;
  std::size_t Size = 0;
  std::size_t Cap = 0;
  bool Owned = true; ///< false: Data aliases external (mapped) storage.
};

} // namespace cvr

#endif // CVR_SUPPORT_ALIGNEDBUFFER_H
