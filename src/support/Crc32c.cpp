//===- support/Crc32c.cpp - CRC-32C (Castagnoli) checksum -----------------===//
//
// Part of the CVR reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Crc32c.h"

#include <array>

namespace cvr {

namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial, built once
/// at first use.
const std::array<std::uint32_t, 256> &crcTable() {
  static const std::array<std::uint32_t, 256> Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0x82F63B78u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace

std::uint32_t crc32c(const void *Data, std::size_t Bytes, std::uint32_t Seed) {
  const auto *P = static_cast<const unsigned char *>(Data);
  const auto &T = crcTable();
  std::uint32_t C = ~Seed;
  for (std::size_t I = 0; I < Bytes; ++I)
    C = T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

} // namespace cvr
