#!/usr/bin/env python3
"""Perf-trajectory gate over the cvr-bench JSON artifacts.

Hosted runners are too noisy for absolute-time thresholds, so the gate
tracks *ratios between kernels measured in the same process on the same
machine* — those divide the machine out and travel between hosts:

  cvr_vs_csr          geomean over matrices of best-CSR(I) / best-CVR
                      seconds per iteration (micro_kernels sweep)
  tuned_vs_cvr        geomean over matrices of plain-CVR / CVR+tuned
                      seconds per iteration (micro_kernels sweep)
  fused_vs_unfused_cg geomean over (matrix, kernel) cells of unfused /
                      fused CG seconds per iteration (solver_pipeline)
  spmm_amortization_k8 geomean over matrices of spmv-loop(K=8) / spmm(K=8)
                      seconds per sweep (spmm_batch) — how much one matrix
                      stream per register block buys over 8 re-streams
  bytes_per_nnz_u16_reduction geomean over matrices of measured DRAM
                      bytes/nnz of the f64/u32 plan over the f64/u16 plan
                      (roofline_sweep) — what narrowing the column-index
                      stream buys at the memory wall
  bytes_per_nnz_f32_reduction same ratio for f64/u32 over f32x64/u32 —
                      what the fp32 value stream buys
  roofline_accuracy   geomean over every roofline_sweep record of
                      min(predicted, measured) / max(predicted, measured)
                      bytes/nnz — how well the analytical model prices
                      real (simulated-cache) DRAM traffic. Also holds an
                      absolute floor of 0.75: the model must stay within
                      25% of the measurement regardless of the baseline.

The byte invariants come from the deterministic cache simulator, not
wall-clock time, so they are machine-independent; the time invariants are
the best-of over the repeated input files (per-cell minimum of
seconds_per_iteration before the ratio), which is the same noise defence
the perf-smoke job uses. The gate fails when any invariant falls more
than --tolerance (default 15%) below the committed baseline in
results/bench_baseline.json; improvements always pass and are reported
so the baseline can be ratcheted via the update-baseline label.

The full report — invariants, per-matrix detail, and the telemetry
snapshot embedded in the first micro file — is written to --out for the
BENCH_<sha>.json artifact.
"""

import argparse
import json
import math
import sys

SCHEMA = "cvr-perf-trajectory-1"
KNOWN_BENCH_SCHEMAS = ("cvr-bench-1", "cvr-bench-2", "cvr-bench-3")

# Absolute floors enforced on top of the relative baseline check: a
# ratcheted baseline must never talk the gate into accepting a roofline
# model that misprices traffic by more than 25%.
HARD_FLOORS = {"roofline_accuracy": 0.75}


def load_records(paths):
    """Merges records across repeat files, keeping the per-cell minimum
    seconds_per_iteration (cell = matrix, format, variant)."""
    best = {}
    telemetry = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") not in KNOWN_BENCH_SCHEMAS:
            sys.exit(f"{path}: unknown schema {doc.get('schema')!r}")
        if not telemetry and isinstance(doc.get("telemetry"), dict):
            telemetry = doc["telemetry"]
        for rec in doc["records"]:
            key = (rec["matrix"], rec["format"], rec["variant"])
            prev = best.get(key)
            if prev is None or rec["seconds_per_iteration"] < \
                    prev["seconds_per_iteration"]:
                best[key] = rec
    if not best:
        sys.exit(f"no records in {paths}")
    return best, telemetry


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def micro_invariants(best):
    """cvr_vs_csr and tuned_vs_cvr from the micro_kernels sweep."""
    matrices = sorted({m for (m, _, _) in best})
    cvr_vs_csr, tuned_vs_cvr, detail = [], [], {}
    for m in matrices:
        def fastest(fmt, variant=None):
            times = [r["seconds_per_iteration"]
                     for (mm, ff, vv), r in best.items()
                     if mm == m and ff == fmt and
                     (variant is None or vv == variant)]
            return min(times) if times else None

        csr = fastest("CSR(I)")
        cvr = fastest("CVR", "CVR")
        tuned = fastest("CVR", "CVR+tuned")
        d = {}
        if csr and cvr:
            d["cvr_vs_csr"] = csr / cvr
            cvr_vs_csr.append(csr / cvr)
        if cvr and tuned:
            d["tuned_vs_cvr"] = cvr / tuned
            tuned_vs_cvr.append(cvr / tuned)
        detail[m] = d
    out = {}
    if cvr_vs_csr:
        out["cvr_vs_csr"] = geomean(cvr_vs_csr)
    if tuned_vs_cvr:
        out["tuned_vs_cvr"] = geomean(tuned_vs_cvr)
    return out, detail


def solver_invariants(best):
    """fused_vs_unfused_cg from the solver_pipeline sweep."""
    ratios, detail = [], {}
    cells = sorted({(m, f) for (m, f, v) in best if v.startswith("cg/")})
    for m, f in cells:
        fused = best.get((m, f, "cg/fused"))
        unfused = best.get((m, f, "cg/unfused"))
        if not fused or not unfused:
            continue
        r = unfused["seconds_per_iteration"] / \
            fused["seconds_per_iteration"]
        ratios.append(r)
        detail[f"{m}/{f}"] = r
    out = {}
    if ratios:
        out["fused_vs_unfused_cg"] = geomean(ratios)
    return out, detail


def spmm_invariants(best):
    """spmm_amortization_k8 from the spmm_batch K-sweep."""
    ratios, detail = [], {}
    matrices = sorted({m for (m, _, v) in best if v == "spmm/k8"})
    for m in matrices:
        loop = best.get((m, "CVR", "spmv-loop/k8"))
        spmm = best.get((m, "CVR", "spmm/k8"))
        if not loop or not spmm:
            continue
        r = loop["seconds_per_iteration"] / spmm["seconds_per_iteration"]
        ratios.append(r)
        detail[m] = r
    out = {}
    if ratios:
        out["spmm_amortization_k8"] = geomean(ratios)
    return out, detail


def roofline_invariants(best):
    """bytes_per_nnz_* and roofline_accuracy from the roofline_sweep.

    The sweep's records are keyed by plan label ("f64/u32", "f64/u16",
    "f32x64/u32", "f32x64/u16"); predicted/measured bytes per nnz come
    from the deterministic cache simulator, so no best-of reduction is
    needed — repeats only tighten the wall-clock fields.
    """
    u16, f32, accuracy = [], [], []
    detail = {}
    matrices = sorted({m for (m, _, _) in best})
    for m in matrices:
        def measured(variant):
            rec = best.get((m, "CVR", variant))
            if rec is None:
                return None
            v = rec.get("measured_bytes_per_nnz")
            return v if v and v > 0.0 else None

        d = {}
        base = measured("f64/u32")
        narrow = measured("f64/u16")
        mixed = measured("f32x64/u32")
        if base and narrow:
            d["u16_reduction"] = base / narrow
            u16.append(base / narrow)
        if base and mixed:
            d["f32_reduction"] = base / mixed
            f32.append(base / mixed)
        for (mm, ff, vv), rec in best.items():
            if mm != m:
                continue
            pred = rec.get("predicted_bytes_per_nnz")
            meas = rec.get("measured_bytes_per_nnz")
            if not pred or not meas or pred <= 0.0 or meas <= 0.0:
                continue
            acc = min(pred, meas) / max(pred, meas)
            d[f"accuracy/{vv}"] = acc
            accuracy.append(acc)
        detail[m] = d
    out = {}
    if u16:
        out["bytes_per_nnz_u16_reduction"] = geomean(u16)
    if f32:
        out["bytes_per_nnz_f32_reduction"] = geomean(f32)
    if accuracy:
        out["roofline_accuracy"] = geomean(accuracy)
    return out, detail


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--micro", nargs="+", required=True,
                    help="micro_kernels --json outputs (repeats)")
    ap.add_argument("--solver", nargs="+", required=True,
                    help="solver_pipeline --json outputs (repeats)")
    ap.add_argument("--spmm", nargs="+", required=True,
                    help="spmm_batch --json outputs (repeats)")
    ap.add_argument("--roofline", nargs="+", required=True,
                    help="roofline_sweep --json outputs")
    ap.add_argument("--baseline", default="results/bench_baseline.json")
    ap.add_argument("--out", required=True,
                    help="where to write the full trajectory report")
    ap.add_argument("--sha", default="unknown",
                    help="commit the measurements belong to")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop below baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite --baseline from this run and pass")
    args = ap.parse_args()

    micro_best, telemetry = load_records(args.micro)
    solver_best, _ = load_records(args.solver)
    spmm_best, _ = load_records(args.spmm)
    roofline_best, _ = load_records(args.roofline)

    invariants, micro_detail = micro_invariants(micro_best)
    solver_inv, solver_detail = solver_invariants(solver_best)
    invariants.update(solver_inv)
    spmm_inv, spmm_detail = spmm_invariants(spmm_best)
    invariants.update(spmm_inv)
    roofline_inv, roofline_detail = roofline_invariants(roofline_best)
    invariants.update(roofline_inv)

    required = ("cvr_vs_csr", "tuned_vs_cvr", "fused_vs_unfused_cg",
                "spmm_amortization_k8", "bytes_per_nnz_u16_reduction",
                "bytes_per_nnz_f32_reduction", "roofline_accuracy")
    missing = [k for k in required if k not in invariants]
    if missing:
        sys.exit(f"invariants missing from the sweeps: {missing}")

    # Hard floors bind even under --update-baseline: the ratchet must not
    # be able to commit a baseline that a fresh checkout would reject.
    for k, floor in HARD_FLOORS.items():
        if invariants[k] < floor:
            sys.exit(f"{k} = {invariants[k]:.3f} breaches the absolute "
                     f"floor {floor:.2f}")

    report = {
        "schema": SCHEMA,
        "sha": args.sha,
        "tolerance": args.tolerance,
        "invariants": invariants,
        "micro_detail": micro_detail,
        "solver_detail": solver_detail,
        "spmm_detail": spmm_detail,
        "roofline_detail": roofline_detail,
        "telemetry": telemetry,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.update_baseline:
        baseline = {"schema": SCHEMA, "sha": args.sha,
                    "invariants": invariants}
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        for k in required:
            print(f"  {k:20s} {invariants[k]:.3f}")
        return

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("schema") != SCHEMA:
        sys.exit(f"{args.baseline}: unknown schema "
                 f"{baseline.get('schema')!r}")

    failures = []
    for k in required:
        base = baseline["invariants"][k]
        cur = invariants[k]
        floor = base * (1.0 - args.tolerance)
        verdict = "FAIL" if cur < floor else "ok"
        drift = (cur / base - 1.0) * 100.0
        print(f"  {k:20s} {cur:8.3f}  baseline {base:8.3f}  "
              f"({drift:+.1f}%)  {verdict}")
        if cur < floor:
            failures.append(k)
        elif cur > base * (1.0 + args.tolerance):
            print(f"    note: {k} improved beyond the noise band; "
                  f"consider the update-baseline label")
    if failures:
        sys.exit(f"perf trajectory regression: {failures} fell more "
                 f"than {args.tolerance:.0%} below baseline "
                 f"{baseline.get('sha', '?')}")
    print("perf trajectory within the noise band")


if __name__ == "__main__":
    main()
