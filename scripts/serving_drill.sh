#!/bin/sh
# scripts/serving_drill.sh [build-dir]
#
# Chaos drill for the serving daemon (cvr_served + cvr_tool serve-client):
#
#   1. Baseline: a mixed blob/.mtx fleet serves correct answers under
#      concurrent load, and /stats parses as JSON.
#   2. Each serve.* fail point in turn, via CVR_FAILPOINTS:
#        serve.mmap       -> loader falls back to the stream reader and
#                            still serves correct answers
#        serve.accept     -> transient accept failures back off; the
#                            daemon keeps serving
#        serve.queue_full -> every compute request shed with
#                            RESOURCE_EXHAUSTED; /stats stays reachable
#                            (control ops bypass admission) and reports
#                            the sheds
#        serve.deadline   -> requests answer DEADLINE_EXCEEDED; nothing
#                            crashes
#   3. A corrupted blob is refused at load time (the daemon must not come
#      up on bytes that fail validation).
#   4. SIGTERM mid-flight: in-flight requests are answered, the daemon
#      drains and exits 0, the socket file is gone.
#
# Every daemon run must exit cleanly; any unexpected response code makes
# serve-client (and so the drill) fail.
set -eu

BUILD=${1:-build}
TOOL="$BUILD/tools/cvr_tool"
DAEMON="$BUILD/tools/cvr_served"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cvr_serving_drill.XXXXXX")
SOCK="$WORK/cvr.sock"
LOG="$WORK/served.log"
DAEMON_PID=""

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

say() { printf '\n=== %s ===\n' "$*"; }

# Starts the daemon with $1 as CVR_FAILPOINTS (empty = none) and the rest
# as extra arguments; waits for the socket to appear.
start_daemon() {
  fp=$1; shift
  : >"$LOG"
  CVR_FAILPOINTS="$fp" "$DAEMON" --socket="$SOCK" \
    --blob=drill="$WORK/drill.cvr" --mtx=drill_mtx="$WORK/drill.mtx" \
    --workers=4 --max-in-flight=4 "$@" >>"$LOG" 2>&1 &
  DAEMON_PID=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "daemon failed to come up; log:" >&2
      cat "$LOG" >&2
      exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "daemon died during startup; log:" >&2
      cat "$LOG" >&2
      exit 1
    }
    sleep 0.1
  done
}

# SIGTERMs the daemon and requires a clean drain (exit 0, socket gone).
stop_daemon() {
  kill -TERM "$DAEMON_PID"
  wait "$DAEMON_PID" || {
    echo "daemon exited nonzero; log:" >&2
    cat "$LOG" >&2
    exit 1
  }
  DAEMON_PID=""
  grep -q "drained, exiting" "$LOG"
  [ ! -S "$SOCK" ]
}

say "workload: suite matrix -> Matrix Market + mapped blob"
"$TOOL" gen com-DBLP "$WORK/drill.mtx" --scale=0.2
"$TOOL" convert "$WORK/drill.mtx" "$WORK/drill.cvr" --layout=mapped

say "baseline: correct answers under concurrent load, parseable /stats"
start_daemon ""
grep -q "\[mapped\]" "$LOG"   # The blob really took the zero-copy path.
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  --mtx="$WORK/drill.mtx" -n 40 --threads=4
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill_mtx \
  --mtx="$WORK/drill.mtx" -n 10 --threads=2
"$TOOL" serve-client --socket="$SOCK" --op=spmm --matrix=drill --k=4 -n 5
"$TOOL" serve-client --socket="$SOCK" --op=solve --matrix=drill \
  --solver=power -n 2
"$TOOL" serve-client --socket="$SOCK" --op=stats -n 1 >"$WORK/stats.json.raw"
head -n 1 "$WORK/stats.json.raw" >"$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["admission"]["capacity"] == 4, d["admission"]
assert any(e["mode"] == "mapped" for e in d["fleet"]), d["fleet"]
assert any(e["mode"] == "prepared" for e in d["fleet"]), d["fleet"]
assert d["metrics"]["serve.requests"] > 0, d["metrics"]
print("stats ok:", len(d["metrics"]), "metrics")
EOF
stop_daemon

say "serve.mmap: bounded retries, then stream fallback — still correct"
start_daemon "serve.mmap"
grep -q "\[stream\]" "$LOG"
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  --mtx="$WORK/drill.mtx" -n 10 --threads=2
stop_daemon

say "serve.accept: transient accept failures back off; daemon keeps serving"
start_daemon "serve.accept=3"
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  --mtx="$WORK/drill.mtx" -n 10 --threads=2
stop_daemon

say "serve.queue_full: everything shed, daemon stays observable"
start_daemon "serve.queue_full"
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  -n 20 --threads=4 --expect=resource_exhausted
"$TOOL" serve-client --socket="$SOCK" --op=stats -n 1 >"$WORK/shed.json.raw"
head -n 1 "$WORK/shed.json.raw" >"$WORK/shed.json"
python3 - "$WORK/shed.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["admission"]["shed"] >= 20, d["admission"]
print("shed accounted:", d["admission"]["shed"])
EOF
stop_daemon

say "serve.deadline: DEADLINE_EXCEEDED, never a crash"
start_daemon "serve.deadline"
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  -n 10 --threads=2 --expect=deadline_exceeded
stop_daemon

say "corrupted blob: refused at load, daemon never comes up"
cp "$WORK/drill.cvr" "$WORK/bad.cvr"
# Flip one byte in the middle of the payload.
SIZE=$(wc -c <"$WORK/bad.cvr")
python3 - "$WORK/bad.cvr" "$((SIZE / 2))" <<'EOF'
import sys
path, off = sys.argv[1], int(sys.argv[2])
with open(path, "r+b") as f:
    f.seek(off)
    b = f.read(1)
    f.seek(off)
    f.write(bytes([b[0] ^ 0x10]))
EOF
if "$DAEMON" --socket="$SOCK.bad" --blob=bad="$WORK/bad.cvr" \
    >"$WORK/bad.log" 2>&1; then
  echo "daemon accepted a corrupted blob" >&2
  exit 1
fi
grep -qi "cvr.blob" "$WORK/bad.log"

say "SIGTERM mid-flight: in-flight answered, clean drain"
start_daemon ""
# A burst of load racing the shutdown: every request must end in a real
# response (ok) or a clean transport refusal (unavailable) — never a
# protocol error, never a wrong answer.
"$TOOL" serve-client --socket="$SOCK" --op=multiply --matrix=drill \
  --mtx="$WORK/drill.mtx" -n 400 --threads=4 \
  --expect=ok,unavailable &
CLIENT_PID=$!
sleep 0.2
stop_daemon
wait "$CLIENT_PID"

say "serving drill passed"
