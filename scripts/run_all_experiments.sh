#!/bin/sh
# Regenerates every paper table and figure into results/.
set -e
BUILD=${BUILD:-build}
OUT=${OUT:-results}
mkdir -p "$OUT"
for B in table1_preproc_median table3_domain_gflops table4_amortization \
         fig1_l2_missratio_avg fig5_per_matrix_perf fig6_overall_speedup \
         fig7_l2_missratio ablation_cvr; do
  echo "== $B =="
  "$BUILD/bench/$B" "$@" | tee "$OUT/$B.txt"
done
"$BUILD/bench/micro_kernels" --benchmark_min_time=0.05s | tee "$OUT/micro_kernels.txt"
