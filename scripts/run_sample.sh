#!/bin/sh
# Mirrors the paper artifact's run_sample.sh: generate (or take) a matrix,
# convert it to CVR, and report preprocessing + SpMV execution time.
set -e
BUILD=${BUILD:-build}
MTX=${1:-/tmp/cvr_sample.mtx}
if [ ! -f "$MTX" ]; then
  echo "generating the web-Google stand-in at $MTX"
  "$BUILD/tools/cvr_tool" gen web-Google "$MTX"
fi
"$BUILD/tools/cvr_tool" info "$MTX"
"$BUILD/tools/cvr_tool" spmv "$MTX" -n 1000
