#!/bin/sh
# Mirrors the paper artifact's run_locality.sh: simulated cache behaviour.
set -e
BUILD=${BUILD:-build}
[ -n "$1" ] || { echo "usage: $0 matrix.mtx"; exit 2; }
"$BUILD/tools/cvr_tool" locality "$1"
