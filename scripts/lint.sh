#!/bin/sh
# scripts/lint.sh [--strict] [--report FILE] [build-dir] [clang-tidy args...]
#
# Single entry point for the project's static analysis:
#
#   1. cvr_lint (tools/lint) — the project-specific checker. Built from
#      this tree, so it is always available; the script builds the target
#      on demand if the build directory hasn't compiled it yet.
#   2. clang-tidy (config: .clang-tidy at the repo root) over every
#      first-party translation unit in compile_commands.json.
#
# Generate the compilation database first:
#
#   cmake -B build -S .        # CMAKE_EXPORT_COMPILE_COMMANDS is on by default
#   ./scripts/lint.sh build
#
# Without --strict, a missing clang-tidy is skipped with a note so the
# script is safe to call from environments that only carry the GCC
# toolchain. With --strict (what CI uses), every stage must actually run
# and pass: a missing tool or a failed cvr_lint build is an error, not a
# skip.
#
# --report FILE asks cvr_lint to also write its findings as JSON (the CI
# job uploads this as an artifact).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)

STRICT=0
REPORT=""
while [ $# -gt 0 ]; do
    case "$1" in
        --strict) STRICT=1; shift ;;
        --report) REPORT=$2; shift 2 ;;
        --report=*) REPORT=${1#--report=}; shift ;;
        *) break ;;
    esac
done

BUILD_DIR=${1:-"$ROOT/build"}
[ $# -gt 0 ] && shift

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
    echo "lint.sh: $DB missing; run cmake -B $BUILD_DIR -S $ROOT first" >&2
    exit 1
fi

STATUS=0

# ---- Stage 1: cvr_lint ------------------------------------------------
CVR_LINT="$BUILD_DIR/tools/lint/cvr_lint"
if [ ! -x "$CVR_LINT" ]; then
    echo "lint.sh: building cvr_lint" >&2
    if ! cmake --build "$BUILD_DIR" --target cvr_lint >&2; then
        echo "lint.sh: failed to build cvr_lint" >&2
        exit 1
    fi
fi

echo "== cvr_lint"
if [ -n "$REPORT" ]; then
    "$CVR_LINT" -p "$BUILD_DIR" --report "$REPORT" || STATUS=1
else
    "$CVR_LINT" -p "$BUILD_DIR" || STATUS=1
fi

# ---- Stage 2: clang-tidy ----------------------------------------------
TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
    if [ "$STRICT" = 1 ]; then
        echo "lint.sh: $TIDY not found and --strict given" >&2
        exit 1
    fi
    echo "lint.sh: $TIDY not found; skipping (install clang-tidy to enable)" >&2
    exit $STATUS
fi

# First-party TUs only: skip generated files and anything under the build
# tree. The compilation database drives flags, so AVX-512 TUs get their
# real -march flags and intrinsics parse.
FILES=$(cd "$ROOT" && find src tools bench examples tests \
            -name '*.cpp' 2>/dev/null | sort)
if [ -z "$FILES" ]; then
    echo "lint.sh: no sources found under $ROOT" >&2
    exit 1
fi

for f in $FILES; do
    # Only lint TUs present in the database (headers are covered through
    # HeaderFilterRegex when their includers are linted).
    if ! grep -q "\"file\": \".*$f\"" "$DB" && \
       ! grep -q "$f" "$DB"; then
        continue
    fi
    echo "== $f"
    "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$ROOT/$f" || STATUS=1
done

exit $STATUS
