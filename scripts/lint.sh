#!/bin/sh
# scripts/lint.sh [build-dir] [clang-tidy args...]
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# first-party translation unit listed in the build directory's
# compile_commands.json. Generate that first:
#
#   cmake -B build -S .        # CMAKE_EXPORT_COMPILE_COMMANDS is on by default
#   ./scripts/lint.sh build
#
# Exits 0 when clang-tidy is not installed so the script is safe to call
# from environments that only carry the GCC toolchain; CI installs
# clang-tidy explicitly and gets the real run.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}
[ $# -gt 0 ] && shift

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "lint.sh: $TIDY not found; skipping (install clang-tidy to enable)" >&2
    exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
    echo "lint.sh: $DB missing; run cmake -B $BUILD_DIR -S $ROOT first" >&2
    exit 1
fi

# First-party TUs only: skip generated files and anything under the build
# tree. The compilation database drives flags, so AVX-512 TUs get their
# real -march flags and intrinsics parse.
FILES=$(cd "$ROOT" && find src tools bench examples tests \
            -name '*.cpp' 2>/dev/null | sort)
if [ -z "$FILES" ]; then
    echo "lint.sh: no sources found under $ROOT" >&2
    exit 1
fi

STATUS=0
for f in $FILES; do
    # Only lint TUs present in the database (headers are covered through
    # HeaderFilterRegex when their includers are linted).
    if ! grep -q "\"file\": \".*$f\"" "$DB" && \
       ! grep -q "$f" "$DB"; then
        continue
    fi
    echo "== $f"
    "$TIDY" -p "$BUILD_DIR" --quiet "$@" "$ROOT/$f" || STATUS=1
done

exit $STATUS
