#!/bin/sh
# Mirrors the paper artifact's run_comparison.sh: every format on one matrix.
set -e
BUILD=${BUILD:-build}
[ -n "$1" ] || { echo "usage: $0 matrix.mtx [iterations]"; exit 2; }
"$BUILD/tools/cvr_tool" compare "$1" -n "${2:-1000}"
